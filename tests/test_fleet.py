"""Tests for repro.fleet: sharding, demand rollup, pool, planner, CLI.

The metro-scale invariants under test:

* shard derivation is a balanced, contiguous, globally-named partition
  whose scenarios round-trip through plain data;
* per-cell sampling digests are invariant to shard count and to the
  serial/parallel execution mode (the PR-3 interleaving-independence
  invariant lifted to fleet scale);
* the worker pool keeps forked workers warm across jobs and survives
  worker death;
* the planner aggregates per-shard payloads identically no matter who
  executed them.
"""

import json

import pytest

from repro.cli import main
from repro.core.federated import CoreDemand
from repro.fleet import (
    FleetScenario,
    Planner,
    ShardSpec,
    ShardWorkerPool,
    combined_digest,
    execute_shard,
    histogram_percentile,
    latency_histogram,
    merge_histograms,
)


class TestFleetScenario:
    def test_balanced_contiguous_shards(self):
        fleet = FleetScenario(cells=10, shards=3, num_slots=5)
        assert fleet.shard_sizes() == [4, 3, 3]
        shards = fleet.derive_shards()
        assert [s.cell_id_base for s in shards] == [0, 4, 7]
        names = [n for s in shards for n in s.cell_names]
        assert names == [fleet.cell_name(g) for g in range(10)]
        assert len(set(names)) == 10

    def test_cores_follow_reference_ratio(self):
        # 20 MHz reference server: 8 cores / 7 cells.
        fleet = FleetScenario(cells=7, shards=1, num_slots=5)
        (shard,) = fleet.derive_shards()
        assert shard.scenario.pool_config().num_cores == 8
        assert fleet.provisioned_cores == 8

    def test_shard_scenarios_carry_global_base(self):
        fleet = FleetScenario(cells=6, shards=2, num_slots=5)
        first, second = fleet.derive_shards()
        assert first.scenario.cell_id_base == 0
        assert second.scenario.cell_id_base == 3

    def test_shard_spec_roundtrip(self):
        fleet = FleetScenario(cells=4, shards=2, num_slots=5, seed=9)
        shard = fleet.derive_shards()[1]
        clone = ShardSpec.from_dict(
            json.loads(json.dumps(shard.to_dict())))
        # The pool deserializes to its inlined-dict form, so compare
        # the canonical serialized payloads, not the live objects.
        assert clone.to_dict() == shard.to_dict()
        assert clone.scenario.cell_id_base == shard.cell_id_base

    def test_fleet_roundtrip(self):
        fleet = FleetScenario(cells=12, shards=3, cell_kind="100mhz",
                              workload="redis", load_fraction=0.7,
                              seed=5, num_slots=20)
        clone = FleetScenario.from_dict(
            json.loads(json.dumps(fleet.to_dict())))
        assert clone == fleet

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetScenario(cells=0)
        with pytest.raises(ValueError):
            FleetScenario(cells=3, shards=4)
        with pytest.raises(ValueError):
            FleetScenario(cells=3, cell_kind="60ghz")
        with pytest.raises(ValueError):
            FleetScenario(cells=3, policy="no-such-policy")


class TestHistograms:
    def test_merge_matches_single_histogram(self):
        values = [100.0, 500.0, 900.0, 1500.0, 9000.0]
        whole = latency_histogram(values, 2000.0)
        merged = merge_histograms([
            latency_histogram(values[:2], 2000.0),
            latency_histogram(values[2:], 2000.0),
        ])
        assert merged == whole
        assert merged["overflow"] == 1  # 9000 > 4 x 2000

    def test_percentiles(self):
        values = [float(v) for v in range(1, 1001)]
        hist = latency_histogram(values, 2000.0)
        p50 = histogram_percentile(hist, 0.50)
        assert abs(p50 - 500.0) < hist["bin_width_us"]
        # Overflowing tail resolves to the exact maximum.
        hist = latency_histogram(values + [99999.0], 2000.0)
        assert histogram_percentile(hist, 1.0) == 99999.0
        assert histogram_percentile(hist, 0.0) >= 0.0

    def test_percentile_interpolates_through_overflow(self):
        # 990 in-range values plus 10 overflowed ones: p99.9 lands
        # inside the overflow region and must interpolate between the
        # range top and the recorded maximum — not collapse onto the
        # single worst value.
        values = [float(v) for v in range(1, 991)]  # < 8000 = range top
        values += [10000.0 + 1000.0 * i for i in range(10)]  # overflow
        hist = latency_histogram(values, 2000.0)
        assert hist["overflow"] == 10
        range_top = hist["bin_width_us"] * len(hist["counts"])
        p999 = histogram_percentile(hist, 0.999)
        assert p999 != hist["max_us"]
        assert range_top < p999 < hist["max_us"]
        # Monotone in the quantile, and q=1.0 still hits the max.
        assert p999 <= histogram_percentile(hist, 0.9999) \
            <= histogram_percentile(hist, 1.0) == hist["max_us"]

    def test_histogram_rejects_bad_latencies(self):
        for bad in (-1.0, -1e-9, float("nan"), float("inf"),
                    float("-inf")):
            with pytest.raises(ValueError):
                latency_histogram([100.0, bad], 2000.0)

    def test_merge_rejects_mixed_geometry(self):
        with pytest.raises(ValueError):
            merge_histograms([latency_histogram([], 2000.0),
                              latency_histogram([], 1500.0)])


class TestShardExecution:
    def test_execute_shard_payload(self):
        fleet = FleetScenario(cells=2, shards=1, num_slots=20, seed=4)
        (shard,) = fleet.derive_shards()
        payload = execute_shard(shard.to_dict())
        assert payload["shard_index"] == 0
        assert sorted(payload["cell_digests"]) == \
            sorted(shard.cell_names)
        assert payload["slot_count"] > 0
        demand = payload["demand"]
        assert demand["cores"] >= 1
        assert set(demand["cells"]) == set(shard.cell_names)
        # Round-trips through JSON (the pipe protocol requirement).
        json.dumps(payload)

    def test_demand_uses_federated_rule(self):
        fleet = FleetScenario(cells=2, shards=1, num_slots=20, seed=4)
        (shard,) = fleet.derive_shards()
        from repro.fleet.demand import ShardDemandRecorder
        from repro.scenario import build_simulation

        config = shard.scenario.pool_config()
        recorder = ShardDemandRecorder(config.cells, config.deadline_us)
        simulation = build_simulation(shard.scenario)
        simulation.demand_observer = recorder
        simulation.run(shard.num_slots)
        demand = recorder.shard_demand()
        assert isinstance(demand, CoreDemand)
        per_cell = [recorder.cell_demand(c.name) for c in config.cells]
        assert demand.cores == sum(d.cores for d in per_cell)


class TestShardingInvariance:
    def _digests(self, shards, jobs=1):
        fleet = FleetScenario(cells=6, shards=shards, num_slots=25,
                              seed=13)
        report = Planner(fleet, jobs=jobs).run()
        assert report.ok, report.failures
        return report.cell_digests

    def test_digests_invariant_to_shard_count(self):
        one = self._digests(shards=1)
        three = self._digests(shards=3)
        six = self._digests(shards=6)
        assert one == three == six
        assert len(one) == 6

    def test_digests_invariant_to_jobs(self):
        serial = self._digests(shards=3, jobs=1)
        parallel = self._digests(shards=3, jobs=3)
        assert serial == parallel

    def test_different_seeds_differ(self):
        a = Planner(FleetScenario(cells=2, num_slots=10, seed=1)).run()
        b = Planner(FleetScenario(cells=2, num_slots=10, seed=2)).run()
        assert a.cell_digests != b.cell_digests

    def test_combined_digest_order_independent(self):
        digests = {"b": "2", "a": "1"}
        assert combined_digest(digests) == \
            combined_digest(dict(reversed(list(digests.items()))))


class TestWorkerPool:
    def test_workers_stay_warm_across_jobs(self):
        fleet = FleetScenario(cells=4, shards=4, num_slots=5, seed=2)
        shards = fleet.derive_shards()
        with ShardWorkerPool(1) as pool:
            pids, jobs_done = set(), []
            for shard in shards:
                pool.submit(0, shard.to_dict())
                (message,) = pool.wait()
                assert message.status == "ok"
                worker = message.payload["worker"]
                pids.add(worker["pid"])
                jobs_done.append(worker["jobs_done"])
        assert len(pids) == 1  # one forked process served everything
        assert jobs_done == [1, 2, 3, 4]

    def test_error_keeps_worker_alive(self):
        fleet = FleetScenario(cells=1, shards=1, num_slots=5)
        (shard,) = fleet.derive_shards()
        bad = shard.to_dict()
        bad["scenario"] = {"schema": -1}
        with ShardWorkerPool(1) as pool:
            pool.submit(0, bad)
            (message,) = pool.wait()
            assert message.status == "error"
            assert "schema" in message.payload["error"]
            # The same worker still serves good jobs afterwards.
            pool.submit(0, shard.to_dict())
            (message,) = pool.wait()
            assert message.status == "ok"

    def test_dead_worker_is_retired(self):
        fleet = FleetScenario(cells=1, shards=1, num_slots=5)
        (shard,) = fleet.derive_shards()
        with ShardWorkerPool(2) as pool:
            pool.submit(0, shard.to_dict())
            pool._workers[0].process.terminate()
            messages = pool.wait()
            died = [m for m in messages if m.status == "died"]
            assert died and died[0].worker_id == 0
            assert "without reporting" in died[0].payload["error"]
            assert pool.alive == 1


class TestPlanner:
    def test_serial_and_parallel_reports_match(self):
        fleet = FleetScenario(cells=4, shards=2, num_slots=20, seed=6)
        serial = Planner(fleet, jobs=1).run().to_dict()
        parallel = Planner(fleet, jobs=2).run().to_dict()

        def strip(payload):
            payload.pop("planner")
            for row in payload["servers"]:
                row.pop("wall_s")
                row.pop("worker")
            return payload

        assert strip(serial) == strip(parallel)

    def test_report_contents(self):
        fleet = FleetScenario(cells=4, shards=2, num_slots=20, seed=6)
        report = Planner(fleet, jobs=1).run()
        assert report.ok
        assert report.slot_count == 4 * 20 * 2  # cells x slots x dirs
        assert report.provisioned_cores == fleet.provisioned_cores
        assert 0.0 <= report.reclaimed_fraction <= 1.0
        assert report.latency_us["p50"] <= report.latency_us["p99"] \
            <= report.latency_us["p999"]
        assert report.demand_cores >= len(report.cell_digests)
        assert report.fleet_digest == combined_digest(report.cell_digests)
        rendered = report.render()
        assert "tail latency" in rendered and "reclaimed CPU" in rendered
        json.dumps(report.to_dict())

    def test_progress_events(self):
        events = []
        fleet = FleetScenario(cells=2, shards=2, num_slots=5)
        Planner(fleet, jobs=1, progress=events.append).run()
        kinds = [e["kind"] for e in events]
        assert kinds.count("dispatch") == 2
        assert kinds.count("done") == 2

    def test_dead_worker_shard_is_requeued(self, monkeypatch):
        """Killing a worker mid-job must not forfeit its shard.

        The shard is requeued (retry budget 1) and completes on a
        surviving worker, so the report is clean and the fleet digest
        matches the serial run byte for byte.
        """
        import repro.fleet.planner as planner_module

        class KillFirstJobPool(ShardWorkerPool):
            killed = False

            def submit(self, worker_id, payload):
                super().submit(worker_id, payload)
                if not KillFirstJobPool.killed:
                    KillFirstJobPool.killed = True
                    self._workers[worker_id].process.terminate()

        monkeypatch.setattr(planner_module, "ShardWorkerPool",
                            KillFirstJobPool)
        events = []
        fleet = FleetScenario(cells=4, shards=2, num_slots=10, seed=6)
        report = Planner(fleet, jobs=2, progress=events.append).run()
        assert KillFirstJobPool.killed
        assert report.ok, report.failures
        assert [e["kind"] for e in events].count("retry") == 1
        assert len(report.servers) == 2
        serial = Planner(fleet, jobs=1).run()
        assert report.fleet_digest == serial.fleet_digest
        assert report.cell_digests == serial.cell_digests


class TestFleetCli:
    def test_fleet_text_output(self, capsys):
        code = main(["fleet", "--cells", "3", "--shards", "3",
                     "--slots", "5", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet digest:" in out
        assert "3 x 20mhz cells" in out

    def test_fleet_json_verify_serial(self, capsys):
        code = main(["fleet", "--cells", "4", "--shards", "2",
                     "--jobs", "2", "--slots", "5", "--seed", "1",
                     "--json", "--verify-serial"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verified_against_serial"] is True
        assert len(payload["cell_digests"]) == 4
        assert payload["planner"]["workers"] == 2

"""Coverage for smaller branches across the library."""

import numpy as np
import pytest

from repro.core.models import PwcetEVT
from repro.core.quantile_tree import QuantileDecisionTree, TreeConfig
from repro.ran.config import SLOT_DURATION_US, cell_100mhz_tdd
from repro.ran.traffic import CellTraffic
from repro.sim.engine import Engine, SimulationError
from repro.sim.osmodel import WakeupLatencyModel


class TestEngineGuards:
    def test_not_reentrant(self):
        eng = Engine()
        errors = []

        def reenter():
            try:
                eng.run_until(100.0)
            except SimulationError as exc:
                errors.append(exc)

        eng.schedule_at(1.0, reenter)
        eng.run_until(10.0)
        assert len(errors) == 1

    def test_event_time_property(self):
        eng = Engine()
        event = eng.schedule_at(42.0, lambda: None)
        assert event.time == 42.0
        assert not event.cancelled

    def test_run_drains_everything(self):
        eng = Engine()
        seen = []
        eng.schedule_at(5.0, lambda: seen.append(1))
        eng.schedule_at(2.0, lambda: eng.schedule_after(10.0,
                                                        lambda: seen.append(2)))
        eng.run()
        assert seen == [1, 2]
        assert eng.pending_count() == 0


class TestTreeConfigKnobs:
    def test_min_variance_reduction_prunes(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(1000, 2))
        # Tiny signal: strict reduction threshold should refuse to split.
        y = 0.01 * X[:, 0] + rng.normal(0, 1.0, 1000)
        strict = QuantileDecisionTree(
            TreeConfig(min_variance_reduction=0.5)).fit(X, y)
        loose = QuantileDecisionTree(
            TreeConfig(min_variance_reduction=1e-6)).fit(X, y)
        assert strict.num_leaves <= loose.num_leaves

    def test_threshold_subsampling_still_splits(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(2000, 1))
        y = np.floor(X[:, 0] * 4)
        tree = QuantileDecisionTree(
            TreeConfig(max_thresholds_per_feature=2)).fit(X, y)
        assert tree.num_leaves >= 2


class TestPwcetSmallBlocks:
    def test_few_samples_fall_back_to_raw(self):
        """Fewer than two blocks: the fit uses raw samples."""
        y = np.random.default_rng(2).gamma(2, 5, 30)
        model = PwcetEVT(block_size=50).fit(np.zeros((30, 1)), y)
        assert model.predict() > np.median(y)


class TestConfigTables:
    def test_slot_durations_table(self):
        assert SLOT_DURATION_US[0] == 1000.0
        assert SLOT_DURATION_US[1] == 500.0
        assert SLOT_DURATION_US[4] == 62.5

    def test_direction_share_sums_to_one_ish(self):
        cell = cell_100mhz_tdd()
        total = cell.direction_share(True) + cell.direction_share(False)
        assert total == pytest.approx(1.0, abs=0.05)


class TestTrafficDeterminism:
    def test_same_seed_same_trace(self):
        cell = cell_100mhz_tdd()
        a = CellTraffic.for_cell(cell, 0.5, seed=9).uplink.trace(500)
        b = CellTraffic.for_cell(cell, 0.5, seed=9).uplink.trace(500)
        assert np.array_equal(a, b)

    def test_ul_dl_streams_independent(self):
        cell = cell_100mhz_tdd()
        traffic = CellTraffic.for_cell(cell, 0.5, seed=10)
        ul = traffic.uplink.trace(500)
        dl = traffic.downlink.trace(500)
        assert not np.array_equal(ul[:100], dl[:100])


class TestOsModelDeterminism:
    def test_same_seed_same_samples(self):
        a = WakeupLatencyModel(rng=np.random.default_rng(3))
        b = WakeupLatencyModel(rng=np.random.default_rng(3))
        assert [a.sample(True) for _ in range(20)] == \
            [b.sample(True) for _ in range(20)]

"""Detailed runner behaviours: profiling traffic, TDD scaling, drain."""

import numpy as np
import pytest

from repro.baselines.flexran import DedicatedScheduler, FlexRanScheduler
from repro.ran.config import (
    PoolConfig,
    SlotType,
    cell_100mhz_tdd,
    cell_20mhz_fdd,
)
from repro.ran.tasks import TaskType
from repro.sim.runner import (
    SPECIAL_SLOT_DL_SCALE,
    SPECIAL_SLOT_UL_SCALE,
    Simulation,
)


class TestProfilingTraffic:
    def test_uniform_coverage_of_input_space(self):
        """Profiling mode sweeps volumes up to the per-slot peak."""
        config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=4,
                            deadline_us=4000.0)
        sim = Simulation(config, DedicatedScheduler(), workload="none",
                         load_fraction=1.0, seed=1,
                         profiling_traffic=True)
        volumes = []
        def observe(task):
            if task.task_type is TaskType.CRC_CHECK:
                volumes.append(task.feature("slot_bytes"))
        sim.pool.task_observer = observe
        sim.run(600)
        volumes = np.asarray(volumes)
        peak = cell_20mhz_fdd().peak_bytes_per_slot(uplink=True)
        # Roughly uniform: wide spread, mean near half the peak.
        assert volumes.max() > 0.9 * peak
        assert 0.3 * peak < volumes.mean() < 0.7 * peak

    def test_profiling_includes_idle_slots(self):
        config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=4,
                            deadline_us=4000.0)
        sim = Simulation(config, DedicatedScheduler(), workload="none",
                         load_fraction=1.0, seed=2,
                         profiling_traffic=True)
        idle = [0]
        def observe(task):
            if task.task_type is TaskType.FFT and \
                    task.feature("slot_bytes") == 0:
                idle[0] += 1
        sim.pool.task_observer = observe
        sim.run(600)
        assert idle[0] > 10  # ~10% idle draws


class TestTddScaling:
    def test_special_slots_scale_traffic(self):
        """SPECIAL slots carry scaled-down volumes of both directions."""
        assert 0 < SPECIAL_SLOT_UL_SCALE < 1
        assert 0 < SPECIAL_SLOT_DL_SCALE < 1
        config = PoolConfig(cells=(cell_100mhz_tdd(),), num_cores=4,
                            deadline_us=1500.0)
        sim = Simulation(config, DedicatedScheduler(), workload="none",
                         load_fraction=1.0, seed=3)
        per_slot_type = {}
        def observe(task):
            dag = task.dag
            slot_type = config.cells[0].slot_type(dag.slot_index)
            per_slot_type.setdefault(slot_type, set()).add(
                (dag.slot_index, dag.uplink))
        sim.pool.task_observer = observe
        sim.run(50)
        # DDDSU: D slots carry only DL DAGs, U only UL, S both.
        assert all(not ul for __, ul in per_slot_type[SlotType.DOWNLINK])
        assert all(ul for __, ul in per_slot_type[SlotType.UPLINK])
        special_dirs = {ul for __, ul in per_slot_type[SlotType.SPECIAL]}
        assert special_dirs == {True, False}


class TestDrain:
    def test_inflight_dags_complete_after_last_slot(self):
        config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=2,
                            deadline_us=8000.0)
        sim = Simulation(config, FlexRanScheduler(), workload="none",
                         load_fraction=0.9, seed=4)
        result = sim.run(100)
        # 100 slots x 2 DAGs each, all completed (none abandoned).
        assert result.latency.count == 200
        assert not sim.pool.active_dags

    def test_duration_covers_drain(self):
        config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=4,
                            deadline_us=2000.0)
        sim = Simulation(config, FlexRanScheduler(), workload="none",
                         load_fraction=0.5, seed=5)
        result = sim.run(100)
        assert result.duration_us >= 100 * 1000.0

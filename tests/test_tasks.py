"""Tests for the task cost model (Fig. 6, Table 5 calibration anchors)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ran.tasks import (
    CostModel,
    TaskInstance,
    TaskType,
    prbs_for_bandwidth,
)


@pytest.fixture
def model():
    return CostModel(rng=np.random.default_rng(0))


def _decode_cost(model, cbs, snr_margin=10.0, code_rate=0.8):
    return model.base_cost_us(
        TaskType.LDPC_DECODE, prbs=273, antennas=4, total_layers=4,
        slot_bytes=10_000, slot_codeblocks=cbs, task_codeblocks=cbs,
        snr_margin_db=snr_margin, code_rate=code_rate,
    )


class TestPrbs:
    def test_standard_values(self):
        assert prbs_for_bandwidth(20, 0) == 107  # ~106 in 38.101
        assert prbs_for_bandwidth(100, 1) == 269  # ~273 in 38.101

    def test_scales_with_bandwidth(self):
        assert prbs_for_bandwidth(40, 1) > prbs_for_bandwidth(20, 1)


class TestDecodeCalibration:
    """Fig. 6a anchors: 3 CBs ≈ 100 µs, 15 CBs ≈ 450-500 µs (one core)."""

    def test_runtime_linear_in_codeblocks(self, model):
        c3 = _decode_cost(model, 3)
        c15 = _decode_cost(model, 15)
        assert c15 / c3 == pytest.approx(5.0, rel=0.15)

    def test_absolute_range_matches_fig6a(self, model):
        # Average-ish link margin gives the Fig. 6a magnitudes.
        assert 60 <= _decode_cost(model, 3, snr_margin=3.0) <= 140
        assert 300 <= _decode_cost(model, 15, snr_margin=3.0) <= 550

    def test_low_snr_margin_costs_more(self, model):
        assert _decode_cost(model, 8, snr_margin=0.0) > \
            _decode_cost(model, 8, snr_margin=8.0)

    def test_snr_effect_saturates(self, model):
        assert _decode_cost(model, 8, snr_margin=8.0) == \
            _decode_cost(model, 8, snr_margin=20.0)

    def test_low_code_rate_costs_more(self, model):
        assert _decode_cost(model, 8, code_rate=0.2) > \
            _decode_cost(model, 8, code_rate=0.9)


class TestCorePenalty:
    def test_single_core_no_penalty(self, model):
        assert model.core_penalty(TaskType.LDPC_DECODE, 1) == 0.0

    def test_penalty_caps_at_25_percent(self, model):
        assert model.core_penalty(TaskType.LDPC_DECODE, 6) == \
            pytest.approx(0.25)
        assert model.core_penalty(TaskType.LDPC_DECODE, 48) == \
            pytest.approx(0.25)

    def test_penalty_monotone_in_cores(self, model):
        penalties = [model.core_penalty(TaskType.LDPC_DECODE, n)
                     for n in range(1, 8)]
        assert all(b >= a for a, b in zip(penalties, penalties[1:]))

    def test_compute_bound_tasks_unaffected(self, model):
        assert model.core_penalty(TaskType.FFT, 6) == 0.0
        assert model.core_penalty(TaskType.MODULATION, 6) == 0.0

    def test_memory_stalls_grow_with_spread(self, model):
        single = model.memory_stalls_per_cycle(8, 1)
        spread = model.memory_stalls_per_cycle(8, 6)
        assert spread > 2 * single


class TestSampling:
    def _task(self, model, cbs=8):
        base = _decode_cost(model, cbs)
        return TaskInstance(
            task_id=0, task_type=TaskType.LDPC_DECODE, cell_name="c",
            features=np.zeros(16), base_cost_us=base,
        )

    def test_runtime_near_base_in_isolation(self, model):
        task = self._task(model)
        samples = [model.sample_runtime(task) for _ in range(2000)]
        assert np.median(samples) == pytest.approx(task.base_cost_us,
                                                   rel=0.05)

    def test_interference_multiplier_applies(self, model):
        task = self._task(model)
        inflated = [model.sample_runtime(task, interference_multiplier=1.5)
                    for _ in range(500)]
        assert np.median(inflated) == pytest.approx(1.5 * task.base_cost_us,
                                                    rel=0.1)

    def test_tail_multiplier_applies(self, model):
        task = self._task(model)
        sample = model.sample_runtime(task, tail_multiplier=3.0)
        assert sample > 2.0 * task.base_cost_us

    def test_multicore_samples_slower(self, model):
        task = self._task(model)
        single = np.median([model.sample_runtime(task, active_cores=1)
                            for _ in range(500)])
        six = np.median([model.sample_runtime(task, active_cores=6)
                         for _ in range(500)])
        assert six == pytest.approx(1.25 * single, rel=0.08)

    def test_runtime_strictly_positive(self, model):
        task = self._task(model, cbs=0)
        task.base_cost_us = 0.0
        assert model.sample_runtime(task) > 0.0


class TestTaskInstance:
    def test_deadline_requires_dag(self, model):
        task = TaskInstance(task_id=0, task_type=TaskType.FFT,
                            cell_name="c", features=np.zeros(16),
                            base_cost_us=1.0)
        with pytest.raises(ValueError):
            __ = task.deadline_us

    def test_feature_lookup_by_name(self):
        features = np.arange(16, dtype=float)
        task = TaskInstance(task_id=0, task_type=TaskType.FFT,
                            cell_name="c", features=features,
                            base_cost_us=1.0)
        assert task.feature("num_ues") == 0.0
        assert task.feature("task_codeblocks") == 10.0


@given(st.sampled_from(list(TaskType)),
       st.integers(min_value=0, max_value=60),
       st.floats(min_value=0, max_value=200_000, allow_nan=False))
@settings(max_examples=200)
def test_base_cost_always_positive(task_type, cbs, slot_bytes):
    model = CostModel()
    cost = model.base_cost_us(
        task_type, prbs=106, antennas=2, total_layers=2,
        slot_bytes=slot_bytes, slot_codeblocks=cbs, task_codeblocks=cbs,
        task_bytes=slot_bytes, snr_margin_db=5.0, code_rate=0.6,
    )
    assert cost > 0.0
    assert np.isfinite(cost)

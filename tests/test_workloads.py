"""Tests for the best-effort workload models (§6 scenarios)."""

import numpy as np
import pytest

from repro.sim.cache import CacheInterferenceModel
from repro.sim.engine import Engine
from repro.workloads.base import Workload, WorkloadHost, WorkloadSpec
from repro.workloads.catalog import (
    MLPERF,
    NGINX,
    REDIS_GET,
    TPCC,
    WORKLOAD_SPECS,
    MixController,
    make_host,
    make_workload,
)


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", "ops/s", 100.0, cache_pressure=1.5,
                         base_sharing_efficiency=0.8)
        with pytest.raises(ValueError):
            WorkloadSpec("x", "ops/s", 100.0, cache_pressure=0.5,
                         base_sharing_efficiency=0.0)
        with pytest.raises(ValueError):
            WorkloadSpec("x", "ops/s", 0.0, cache_pressure=0.5,
                         base_sharing_efficiency=0.8)

    def test_ideal_ops(self):
        spec = WorkloadSpec("x", "ops/s", 1000.0, 0.2, 0.8)
        assert spec.ideal_ops(cores=4, duration_us=2e6) == 8000.0

    def test_catalog_efficiencies_match_paper(self):
        """§6.1 reported yields at low cell load."""
        assert REDIS_GET.base_sharing_efficiency == pytest.approx(0.766)
        assert NGINX.base_sharing_efficiency == pytest.approx(0.822)
        assert TPCC.base_sharing_efficiency == pytest.approx(0.72)
        assert MLPERF.base_sharing_efficiency == pytest.approx(0.78)


class TestWorkload:
    def test_achieved_ops_scale_with_core_time(self):
        workload = Workload(REDIS_GET)
        workload.core_time_us = 1e6  # one core-second
        ops = workload.achieved_ops()
        assert ops == pytest.approx(
            REDIS_GET.ops_per_core_second * REDIS_GET.base_sharing_efficiency)

    def test_preemption_penalty_saturates(self):
        workload = Workload(REDIS_GET)
        workload.core_time_us = 1e6
        base = workload.achieved_ops(0.0)
        heavy = workload.achieved_ops(100.0)
        assert heavy == pytest.approx(base * 0.7)


class TestWorkloadHost:
    def test_accrues_available_core_time(self):
        host = WorkloadHost(make_workload("nginx"))
        host.on_available_change(0.0, 4)
        host.on_available_change(1000.0, 2)  # 4 cores for 1 ms
        host.finalize(2000.0)  # then 2 cores for 1 ms
        assert host.total_best_effort_core_us == pytest.approx(6000.0)

    def test_split_among_active_workloads(self):
        host = make_host("redis")  # GET + SET instances
        host.on_available_change(0.0, 2)
        host.finalize(1000.0)
        get, set_ = host.workloads
        assert get.core_time_us == pytest.approx(1000.0)
        assert set_.core_time_us == pytest.approx(1000.0)

    def test_inactive_workload_accrues_nothing(self):
        host = make_host("redis")
        host.set_active("redis-set", False, 0.0)
        host.on_available_change(0.0, 2)
        host.finalize(1000.0)
        get, set_ = host.workloads
        assert get.core_time_us == pytest.approx(2000.0)
        assert set_.core_time_us == 0.0

    def test_pressure_synced_to_cache_model(self):
        cache = CacheInterferenceModel()
        host = make_host("redis", cache_model=cache)
        assert cache.pressure == pytest.approx(
            REDIS_GET.cache_pressure * 2)
        host.set_active("redis-get", False, 0.0)
        host.set_active("redis-set", False, 0.0)
        assert cache.pressure == 0.0

    def test_results_keyed_by_name(self):
        host = make_host("mix")
        host.on_available_change(0.0, 3)
        host.finalize(1e6)
        results = host.results()
        assert set(results) == {"nginx", "redis-get", "tpcc"}
        assert all(v > 0 for v in results.values())


class TestCatalog:
    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            make_workload("minecraft")

    def test_none_scenario_empty(self):
        assert make_workload("none") == []

    def test_all_named_specs_resolvable(self):
        for name in WORKLOAD_SPECS:
            assert make_workload(name)[0].spec.name == name


class TestMixController:
    def test_toggles_but_never_kills_all(self):
        engine = Engine()
        host = make_host("mix")
        MixController(engine, host, min_interval_us=100.0,
                      max_interval_us=200.0,
                      rng=np.random.default_rng(0))
        toggles = []
        original = host.set_active
        host.set_active = lambda n, a, t: (toggles.append((n, a)),
                                           original(n, a, t))
        engine.run_until(20_000.0)
        assert len(toggles) > 10
        assert any(w.active for w in host.workloads)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            MixController(Engine(), make_host("mix"),
                          min_interval_us=100.0, max_interval_us=50.0)

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURES, POLICIES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "concordia"
        assert args.workload == "none"
        assert args.load == 0.5

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "magic"])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for policy in POLICIES:
            assert policy in out
        for figure in FIGURES:
            assert figure in out

    def test_run_json_output(self, capsys):
        code = main(["run", "--config", "20mhz", "--policy", "flexran",
                     "--slots", "200", "--cores", "4", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "flexran"
        assert payload["latency_us"]["deadline"] == 2000.0
        assert 0.0 <= payload["reclaimed_fraction"] <= 1.0

    def test_run_text_output(self, capsys):
        code = main(["run", "--policy", "dedicated", "--slots", "150",
                     "--cores", "4", "--workload", "nginx"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reclaimed CPU" in out
        assert "nginx" in out

    def test_run_mac_mode(self, capsys):
        code = main(["run", "--policy", "flexran", "--slots", "150",
                     "--cores", "4", "--mac"])
        assert code == 0

    def test_train(self, capsys):
        code = main(["train", "--config", "20mhz", "--slots", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "task models" in out
        assert "ldpc_decode" in out

    def test_figure_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        code = main(["figure", "fig3"])
        assert code == 0
        assert "Figure 3" in capsys.readouterr().out

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURES, POLICIES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "concordia"
        assert args.workload == "none"
        assert args.load == 0.5

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "magic"])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for policy in POLICIES:
            assert policy in out
        for figure in FIGURES:
            assert figure in out

    def test_run_json_output(self, capsys):
        code = main(["run", "--config", "20mhz", "--policy", "flexran",
                     "--slots", "200", "--cores", "4", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "flexran"
        assert payload["latency_us"]["deadline"] == 2000.0
        assert 0.0 <= payload["reclaimed_fraction"] <= 1.0

    def test_run_text_output(self, capsys):
        code = main(["run", "--policy", "dedicated", "--slots", "150",
                     "--cores", "4", "--workload", "nginx"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reclaimed CPU" in out
        assert "nginx" in out

    def test_run_mac_mode(self, capsys):
        code = main(["run", "--policy", "flexran", "--slots", "150",
                     "--cores", "4", "--mac"])
        assert code == 0

    def test_train(self, capsys):
        code = main(["train", "--config", "20mhz", "--slots", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "task models" in out
        assert "ldpc_decode" in out

    def test_figure_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        code = main(["figure", "fig3"])
        assert code == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_trace_writes_chrome_trace(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        code = main(["trace", "--slots", "60", "--cores", "4",
                     "--out", str(out), "--metrics-out", str(metrics)])
        assert code == 0
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert {"M", "B", "E"} <= phases
        telemetry = json.loads(metrics.read_text())
        assert telemetry["counters"]["slots/completed"] > 0
        assert "events" in capsys.readouterr().out

    def test_trace_metrics_csv(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.csv"
        code = main(["trace", "--slots", "60", "--cores", "4",
                     "--out", str(out), "--metrics-out", str(metrics)])
        assert code == 0
        lines = metrics.read_text().splitlines()
        assert lines[0] == "metric,value"
        assert any(line.startswith("sched/wakeups,") for line in lines)

    def test_postmortem_text_and_json(self, capsys):
        code = main(["postmortem", "--slots", "60", "--cores", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dominant" in out
        code = main(["postmortem", "--slots", "60", "--cores", "4",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dominant_cause"] in (
            "wakeup latency", "wcet under-prediction",
            "queueing behind another cell")
        assert payload["tasks"] > 0


class TestSweep:
    SWEEP = ["sweep", "--config", "20mhz", "--policy", "flexran",
             "--workload", "none", "--loads", "0.25,0.75",
             "--slots", "120", "--cores", "4", "--json"]

    def test_cold_then_warm_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = self.SWEEP + ["--cache-dir", cache_dir]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["summary"]["executed"] == 2
        assert cold["summary"]["cached"] == 0

        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["summary"]["executed"] == 0  # zero simulations ran
        assert warm["summary"]["cached"] == 2
        for before, after in zip(cold["results"], warm["results"]):
            assert after["p99999_us"] == before["p99999_us"]
            assert after["miss_fraction"] == before["miss_fraction"]

    def test_no_cache_always_executes(self, capsys, tmp_path):
        argv = self.SWEEP[:-1] + ["--loads", "0.25", "--no-cache",
                                  "--cache-dir", str(tmp_path), "--json"]
        for _ in range(2):
            assert main(argv) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["summary"]["executed"] == 1
            assert payload["summary"]["cached"] == 0
        assert not any(tmp_path.iterdir())  # nothing was written

    def test_text_summary(self, capsys, tmp_path):
        argv = [a for a in self.SWEEP if a != "--json"] + \
            ["--loads", "0.25", "--cache-dir", str(tmp_path / "c")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 executed, 0 cached, 0 failed" in out
        assert "p99.999=" in out

    def test_rejects_malformed_loads(self, capsys):
        code = main(["sweep", "--loads", "fast,slow", "--no-cache"])
        assert code == 2
        assert "--loads" in capsys.readouterr().err

    def test_rejects_malformed_repro_jobs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        code = main(["sweep", "--config", "20mhz", "--loads", "0.25",
                     "--no-cache"])
        assert code == 2
        assert "REPRO_JOBS" in capsys.readouterr().err

"""Tests for the alternative WCET models (§6.3 / §6.4 baselines)."""

import math

import numpy as np
import pytest

from repro.core.models import (
    GradientBoostingWCET,
    LinearRegressionWCET,
    PwcetEVT,
    QuantileTreeWCET,
    fit_gumbel_moments,
)


def _dataset(n=2000, seed=0, nonlinear=False):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 10, size=(n, 3))
    if nonlinear:
        base = 5.0 * X[:, 0] + 20.0 * np.sin(X[:, 1])
    else:
        base = 5.0 * X[:, 0] + 2.0 * X[:, 1]
    y = base + rng.gamma(2.0, 1.0, n)
    return X, y


class TestLinearRegression:
    def test_predicts_above_mean(self):
        X, y = _dataset()
        model = LinearRegressionWCET().fit(X, y)
        x = X[0]
        assert model.predict(x) > 5.0 * x[0] + 2.0 * x[1]

    def test_coverage_on_linear_data(self):
        X, y = _dataset(seed=1)
        model = LinearRegressionWCET().fit(X, y)
        predictions = np.array([model.predict(x) for x in X[:500]])
        assert (predictions >= y[:500]).mean() > 0.98

    def test_online_residuals_raise_prediction(self):
        X, y = _dataset()
        model = LinearRegressionWCET(residual_capacity=50).fit(X, y)
        x = X[0]
        before = model.predict(x)
        # A burst of much larger runtimes inflates the z-sigma tail.
        for __ in range(50):
            model.observe(x, before + 500.0)
        assert model.predict(x) > before + 100.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegressionWCET().predict(np.zeros(3))


class TestGradientBoosting:
    def test_beats_linear_on_nonlinear_data(self):
        X, y = _dataset(seed=2, nonlinear=True)
        linear = LinearRegressionWCET().fit(X, y)
        boosted = GradientBoostingWCET(n_stages=30).fit(X, y)
        probe = X[:400]
        err_lin = np.mean([abs(linear._mean(x) -
                               (5 * x[0] + 20 * math.sin(x[1])))
                           for x in probe])
        err_gb = np.mean([abs(boosted._mean(x) -
                              (5 * x[0] + 20 * math.sin(x[1])))
                          for x in probe])
        assert err_gb < err_lin

    def test_stages_bounded(self):
        X, y = _dataset(n=500)
        model = GradientBoostingWCET(n_stages=5).fit(X, y)
        assert len(model._stages) <= 5

    def test_constant_target(self):
        X = np.random.default_rng(0).uniform(size=(300, 2))
        model = GradientBoostingWCET().fit(X, np.full(300, 4.0))
        assert model.predict(X[0]) == pytest.approx(4.0, abs=1e-6)


class TestGumbelFit:
    def test_moments_roundtrip(self):
        rng = np.random.default_rng(3)
        mu_true, beta_true = 100.0, 12.0
        samples = rng.gumbel(mu_true, beta_true, 50_000)
        mu, beta = fit_gumbel_moments(samples)
        assert mu == pytest.approx(mu_true, rel=0.02)
        assert beta == pytest.approx(beta_true, rel=0.05)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_gumbel_moments(np.array([1.0]))


class TestPwcet:
    def test_single_prediction_regardless_of_input(self):
        X, y = _dataset()
        model = PwcetEVT().fit(X, y)
        assert model.predict(X[0]) == model.predict(X[1])

    def test_prediction_is_pessimistic(self):
        X, y = _dataset(seed=4)
        model = PwcetEVT(confidence=0.99999).fit(X, y)
        # A single 1-10^-5 bound must exceed nearly every sample.
        assert model.predict() > np.percentile(y, 99.9)

    def test_more_pessimistic_than_parameterized(self):
        """The Fig. 13 effect: one global bound wastes CPU for small
        inputs compared to the parameterized quantile tree."""
        X, y = _dataset(seed=5)
        pwcet = PwcetEVT().fit(X, y)
        tree = QuantileTreeWCET().fit(X, y)
        small_inputs = X[X[:, 0] < 2.0][:100]
        overshoot_pwcet = np.mean([pwcet.predict(x) for x in small_inputs])
        overshoot_tree = np.mean([tree.predict(x) for x in small_inputs])
        assert overshoot_pwcet > overshoot_tree

    def test_online_refit(self):
        X, y = _dataset(n=1000, seed=6)
        model = PwcetEVT(refit_every=100, block_size=20).fit(X, y)
        before = model.predict()
        # Feed a shifted distribution; the periodic refit should track it.
        for i in range(400):
            model.observe(X[i % len(X)], y[i % len(y)] + 500.0)
        assert model.predict() > before + 100.0

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            PwcetEVT(confidence=1.5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PwcetEVT().predict()


class TestQuantileTreeAdapter:
    def test_empty_leaf_falls_back_to_global_max(self):
        X, y = _dataset(n=600)
        model = QuantileTreeWCET().fit(X, y)
        model.tree.reset_online()
        assert model.predict(X[0]) == y.max()

    def test_observe_routes_to_tree(self):
        X, y = _dataset(n=600)
        model = QuantileTreeWCET().fit(X, y)
        model.observe(X[0], 1e6)
        assert model.predict(X[0]) == 1e6

"""Unit tests for the vRAN pool: dispatch, EDF, wakeups, yields."""

import numpy as np
import pytest

from repro.ran.config import PoolConfig, cell_20mhz_fdd
from repro.ran.dag import DagBuilder
from repro.ran.tasks import CostModel, TaskType
from repro.ran.ue import SlotLoad, bytes_to_allocations
from repro.sim.engine import Engine
from repro.sim.osmodel import LatencyBucket, WakeupLatencyModel
from repro.sim.policy import SchedulerPolicy
from repro.sim.pool import VranPool, WorkerState


class ManualPolicy(SchedulerPolicy):
    """Test policy: core allocation controlled explicitly by the test."""

    name = "manual"


class _FixedCost(CostModel):
    """Deterministic runtimes equal to base cost (no noise)."""

    def sample_runtime(self, task, active_cores=1,
                       interference_multiplier=1.0, tail_multiplier=1.0):
        return task.base_cost_us


def _fast_os(rng=None):
    """Deterministic ~1 µs wakeups."""
    bucket = (LatencyBucket(1.0, 1.0, 1.0000001),)
    return WakeupLatencyModel(rng=rng or np.random.default_rng(0),
                              isolated_buckets=bucket,
                              collocated_buckets=bucket)


def make_pool(num_cores=4, policy=None):
    engine = Engine()
    config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=num_cores,
                        deadline_us=2000.0)
    pool = VranPool(
        engine=engine,
        config=config,
        policy=policy or ManualPolicy(),
        cost_model=_FixedCost(noise_sigma=0.0, isolated_tail_prob=0.0),
        os_model=_fast_os(),
    )
    return engine, pool


def make_dag(total_bytes=5000, uplink=True, release=0.0, deadline=2000.0,
             seed=0):
    builder = DagBuilder(_FixedCost(), rng=np.random.default_rng(seed))
    allocations = bytes_to_allocations(total_bytes,
                                       np.random.default_rng(seed))
    load = SlotLoad("cell20", 0, uplink, allocations)
    return builder.build(load, cell_20mhz_fdd(), release, deadline)


class TestExecution:
    def test_dag_runs_to_completion(self):
        engine, pool = make_pool()
        dag = make_dag()
        pool.release_slot([dag])
        engine.run_until(50_000.0)
        assert dag.finished
        assert dag.completion_us is not None
        assert pool.metrics.slot_count == 1

    def test_all_tasks_get_start_and_finish_times(self):
        engine, pool = make_pool()
        dag = make_dag()
        pool.release_slot([dag])
        engine.run_until(50_000.0)
        for task in dag.tasks:
            assert task.start_time is not None
            assert task.finish_time is not None
            assert task.finish_time >= task.start_time

    def test_dependencies_respected(self):
        engine, pool = make_pool()
        dag = make_dag()
        pool.release_slot([dag])
        engine.run_until(50_000.0)
        for task in dag.tasks:
            for successor in task.successors:
                assert successor.start_time >= task.finish_time

    def test_single_core_serializes(self):
        engine, pool = make_pool(num_cores=1)
        dag = make_dag()
        pool.release_slot([dag])
        engine.run_until(100_000.0)
        intervals = sorted((t.start_time, t.finish_time) for t in dag.tasks)
        for (s1, f1), (s2, __) in zip(intervals, intervals[1:]):
            assert s2 >= f1 - 1e-9

    def test_parallel_decode_uses_multiple_cores(self):
        engine, pool = make_pool(num_cores=4)
        dag = make_dag(total_bytes=40_000)
        pool.release_slot([dag])
        engine.run_until(100_000.0)
        decodes = [t for t in dag.tasks
                   if t.task_type is TaskType.LDPC_DECODE]
        overlaps = sum(
            1
            for i, a in enumerate(decodes)
            for b in decodes[i + 1:]
            if a.start_time < b.finish_time and b.start_time < a.finish_time
        )
        assert overlaps > 0


class TestEdfOrdering:
    def test_earlier_deadline_first(self):
        engine, pool = make_pool(num_cores=1)
        late = make_dag(total_bytes=2000, deadline=5000.0, seed=1)
        early = make_dag(total_bytes=2000, deadline=1000.0, seed=2)
        pool.release_slot([late, early])
        engine.run_until(100_000.0)
        # The early-deadline DAG's entry task must start first (after
        # the shared-entry dispatch ordering).
        first_late = min(t.start_time for t in late.tasks)
        first_early = min(t.start_time for t in early.tasks)
        assert first_early < first_late


class TestCoreAllocation:
    def test_request_fewer_cores_yields_idle_workers(self):
        engine, pool = make_pool(num_cores=4)
        pool.request_cores(1)
        assert pool.reserved_count == 1
        assert pool.metrics.yield_events == 3

    def test_request_more_cores_pays_wakeup(self):
        engine, pool = make_pool(num_cores=4)
        pool.request_cores(1)
        pool.request_cores(3)
        assert pool.reserved_count == 3  # includes WAKING
        waking = [w for w in pool.workers
                  if w.state is WorkerState.WAKING]
        assert len(waking) == 2
        engine.run_until(10.0)
        assert all(w.state is not WorkerState.WAKING for w in pool.workers)
        assert len(pool.metrics.wakeup_latencies) == 2

    def test_running_workers_not_preempted(self):
        engine, pool = make_pool(num_cores=2)
        dag = make_dag(total_bytes=20_000)
        pool.release_slot([dag])
        engine.run_until(5.0)  # something is running now
        running_before = pool.running_count
        assert running_before > 0
        pool.request_cores(0)
        assert pool.running_count == running_before

    def test_target_clamped_to_pool_size(self):
        engine, pool = make_pool(num_cores=4)
        pool.request_cores(100)
        assert pool.target_cores == 4
        pool.request_cores(-5)
        assert pool.target_cores == 0

    def test_available_listener_notified(self):
        engine, pool = make_pool(num_cores=4)
        seen = []
        pool.set_available_listener(lambda now, n: seen.append(n))
        pool.request_cores(1)
        assert seen[0] == 0  # initial callback
        assert seen[-1] == 3

    def test_waking_worker_yields_if_target_dropped(self):
        engine, pool = make_pool(num_cores=2)
        pool.request_cores(0)
        pool.request_cores(2)
        pool.request_cores(0)
        engine.run_until(10.0)
        assert pool.reserved_count == 0


class TestQueueIntrospection:
    def test_oldest_ready_wait(self):
        engine, pool = make_pool(num_cores=1)
        pool.request_cores(0)
        dag = make_dag(total_bytes=1000)
        pool.release_slot([dag])
        engine.run_until(100.0)
        assert pool.oldest_ready_wait_us() == pytest.approx(100.0)

    def test_empty_queue_zero_wait(self):
        engine, pool = make_pool()
        assert pool.oldest_ready_wait_us() == 0.0


class TestRotation:
    def test_rotation_changes_preference_order(self):
        engine, pool = make_pool(num_cores=4)
        pool.policy.rotate_cores = True
        first = pool._order[0].core_id
        pool._rotate()
        assert pool._order[0].core_id == (first + 1) % 4
        assert sorted(w.core_id for w in pool._order) == [0, 1, 2, 3]

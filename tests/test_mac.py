"""Tests for the MAC-layer scheduling substrate."""

import numpy as np
import pytest

from repro.ran.config import cell_20mhz_fdd
from repro.ran.mac import (
    MacCell,
    ProportionalFairScheduler,
    RoundRobinScheduler,
    UeSession,
)
from repro.sim.runner import Simulation
from repro.baselines.flexran import FlexRanScheduler
from repro.ran.config import pool_20mhz_7cells


class TestUeSession:
    def test_validation(self):
        with pytest.raises(ValueError):
            UeSession(ue_id=0, mean_rate_bps=-1.0, mean_snr_db=10.0)

    def test_arrivals_fill_buffer(self):
        session = UeSession(ue_id=0, mean_rate_bps=10e6, mean_snr_db=15.0)
        rng = np.random.default_rng(0)
        for __ in range(200):
            session.arrive(1000.0, rng)
        # ~10 Mbps for 200 ms => ~250 KB expected.
        assert 50_000 < session.buffer_bytes < 1_000_000

    def test_zero_rate_never_arrives(self):
        session = UeSession(ue_id=0, mean_rate_bps=0.0, mean_snr_db=15.0)
        session.arrive(1000.0, np.random.default_rng(0))
        assert session.buffer_bytes == 0

    def test_fading_reverts_to_mean(self):
        session = UeSession(ue_id=0, mean_rate_bps=1e6, mean_snr_db=15.0)
        session.snr_db = 40.0
        rng = np.random.default_rng(1)
        for __ in range(500):
            session.fade(rng)
        assert abs(session.snr_db - 15.0) < 8.0

    def test_instantaneous_rate_grows_with_snr(self):
        cell = cell_20mhz_fdd()
        low = UeSession(ue_id=0, mean_rate_bps=1e6, mean_snr_db=0.0)
        high = UeSession(ue_id=1, mean_rate_bps=1e6, mean_snr_db=25.0)
        assert high.instantaneous_rate_bps(cell) > \
            low.instantaneous_rate_bps(cell)

    def test_throughput_average_tracks_service(self):
        session = UeSession(ue_id=0, mean_rate_bps=1e6, mean_snr_db=15.0)
        for __ in range(300):
            session.record_service(10_000 * 8, 1000.0)
        assert session.avg_throughput_bps == pytest.approx(80e6, rel=0.1)


class TestSchedulers:
    def _sessions(self, n=6):
        rng = np.random.default_rng(2)
        sessions = []
        for i in range(n):
            session = UeSession(ue_id=i, mean_rate_bps=1e6,
                                mean_snr_db=float(rng.uniform(0, 25)))
            session.buffer_bytes = 10_000
            sessions.append(session)
        return sessions

    def test_pf_prefers_starved_users(self):
        cell = cell_20mhz_fdd()
        sessions = self._sessions(4)
        lucky, starved = sessions[0], sessions[1]
        lucky.avg_throughput_bps = 1e9
        starved.avg_throughput_bps = 1.0
        starved.snr_db = lucky.snr_db  # equal channels
        chosen = ProportionalFairScheduler().select(sessions, cell, 1)
        assert chosen[0] is not lucky

    def test_pf_skips_empty_buffers(self):
        cell = cell_20mhz_fdd()
        sessions = self._sessions(4)
        for session in sessions:
            session.buffer_bytes = 0
        assert ProportionalFairScheduler().select(sessions, cell, 4) == []

    def test_round_robin_cycles(self):
        cell = cell_20mhz_fdd()
        sessions = self._sessions(4)
        scheduler = RoundRobinScheduler()
        first = scheduler.select(sessions, cell, 1)[0]
        second = scheduler.select(sessions, cell, 1)[0]
        assert first is not second


class TestMacCell:
    def test_backlog_conservation(self):
        cell = cell_20mhz_fdd()
        mac = MacCell(cell, num_ues=8, total_rate_bps=50e6,
                      rng=np.random.default_rng(3))
        served = 0
        for __ in range(500):
            allocations = mac.step()
            served += sum(a.tbs_bytes for a in allocations)
        # Served bytes roughly track the offered 50 Mbps over 0.5 s.
        offered = 50e6 / 8 * 0.5
        assert 0.5 * offered < served + mac.total_backlog_bytes < \
            2.0 * offered

    def test_allocations_respect_max_ues(self):
        cell = cell_20mhz_fdd()
        mac = MacCell(cell, num_ues=16, total_rate_bps=200e6,
                      rng=np.random.default_rng(4))
        for __ in range(50):
            allocations = mac.step()
            assert len(allocations) <= cell.max_ues_per_slot

    def test_pf_fairer_than_ratio_of_channels(self):
        """PF gives weak-channel users a non-trivial share."""
        cell = cell_20mhz_fdd()
        mac = MacCell(cell, num_ues=6, total_rate_bps=150e6,
                      rng=np.random.default_rng(5))
        # Polarize channels.
        for i, session in enumerate(mac.sessions):
            session.mean_snr_db = 2.0 if i < 3 else 22.0
            session.snr_db = session.mean_snr_db
            session.mean_rate_bps = 25e6
        served = {s.ue_id: 0 for s in mac.sessions}
        for __ in range(1000):
            for alloc in mac.step():
                served[alloc.ue_id] += alloc.tbs_bytes
        weak = sum(served[i] for i in range(3))
        strong = sum(served[i] for i in range(3, 6))
        assert weak > 0.15 * strong

    def test_invalid_num_ues(self):
        with pytest.raises(ValueError):
            MacCell(cell_20mhz_fdd(), num_ues=0, total_rate_bps=1e6)


class TestRunnerIntegration:
    def test_mac_mode_end_to_end(self):
        config = pool_20mhz_7cells(num_cores=8)
        sim = Simulation(config, FlexRanScheduler(), workload="none",
                         load_fraction=0.3, seed=1, allocation_mode="mac")
        result = sim.run(300)
        assert result.latency.count > 0
        assert result.latency.miss_fraction < 0.05

    def test_invalid_mode_rejected(self):
        config = pool_20mhz_7cells()
        with pytest.raises(ValueError):
            Simulation(config, FlexRanScheduler(), allocation_mode="magic")

"""Focused unit tests for Concordia scheduler internals."""

import numpy as np
import pytest

from repro.core.scheduler import ConcordiaScheduler, _DagState

from .test_pool import _FixedCost, _fast_os, make_dag
from .test_scheduler import make_pool_with


class TestHeldDemand:
    def _scheduler(self, hold):
        policy = ConcordiaScheduler(predictor=None, release_hold_us=hold)
        make_pool_with(policy)  # attaches a pool (and starts ticks)
        return policy

    def test_raising_demand_is_immediate(self):
        policy = self._scheduler(hold=300.0)
        assert policy._held_demand(0.0, 2) == 2
        assert policy._held_demand(10.0, 5) == 5

    def test_lowering_waits_for_window(self):
        policy = self._scheduler(hold=300.0)
        assert policy._held_demand(0.0, 6) == 6
        # Demand drops, but the recent peak dominates the window.
        assert policy._held_demand(100.0, 1) == 6
        assert policy._held_demand(250.0, 1) == 6
        # After the peak ages out, the lower demand takes effect.
        assert policy._held_demand(400.0, 1) == 1

    def test_zero_hold_is_instantaneous(self):
        policy = self._scheduler(hold=0.0)
        assert policy._held_demand(0.0, 6) == 6
        assert policy._held_demand(0.1, 1) == 1

    def test_window_prunes_old_entries(self):
        policy = self._scheduler(hold=100.0)
        for t in range(0, 2000, 20):
            policy._held_demand(float(t), 3)
        assert len(policy._demand_window) <= 7


class TestDagState:
    def test_ratchets_start_at_zero(self):
        dag = make_dag(total_bytes=5000)
        state = _DagState(dag)
        assert state.cores_ratchet == 0
        assert state.util_ratchet == 0.0
        assert state.frontier == {}

    def test_slot_start_populates_state(self):
        policy = ConcordiaScheduler(predictor=None)
        engine, pool = make_pool_with(policy)
        dag = make_dag(total_bytes=10_000)
        pool.release_slot([dag])
        state = policy._states[dag.dag_id]
        assert state.work_us == pytest.approx(
            sum(t.predicted_wcet_us for t in dag.tasks))
        # The initial critical path equals the entry task's longest
        # path to a sink.
        entry = [t for t in dag.tasks if t.predecessors_remaining == 0
                 or t.start_time is not None]
        assert state.critical_path_us <= max(t.path_us for t in dag.tasks)
        assert state.critical_path_us > 0

    def test_state_removed_on_completion(self):
        policy = ConcordiaScheduler(predictor=None)
        engine, pool = make_pool_with(policy)
        dag = make_dag(total_bytes=3000)
        pool.release_slot([dag])
        assert dag.dag_id in policy._states
        engine.run_until(50_000.0)
        assert dag.finished
        assert dag.dag_id not in policy._states

    def test_work_decreases_as_tasks_finish(self):
        policy = ConcordiaScheduler(predictor=None)
        engine, pool = make_pool_with(policy)
        dag = make_dag(total_bytes=20_000)
        pool.release_slot([dag])
        state = policy._states[dag.dag_id]
        initial_work = state.work_us
        # Run partway through the DAG.
        engine.run_until(engine.now + 100.0)
        if dag.dag_id in policy._states:
            assert policy._states[dag.dag_id].work_us <= initial_work


class TestRatchetReservation:
    """A DAG holds ONE reservation: the larger of its two ratchets."""

    def _inject(self, policy, dag, cores_ratchet, util_ratchet):
        # Fresh DagBuilders restart dag_id at 0; key the states
        # distinctly so two injected DAGs don't collide.
        dag.dag_id = len(policy._states)
        state = _DagState(dag)
        state.work_us = 10.0
        state.critical_path_us = 10.0
        state.computed_at = 0.0
        state.cores_ratchet = cores_ratchet
        state.util_ratchet = util_ratchet
        policy._states[dag.dag_id] = state
        return state

    def test_heavy_to_light_dag_not_double_counted(self):
        policy = ConcordiaScheduler(predictor=None, release_hold_us=0.0)
        engine, pool = make_pool_with(policy, num_cores=8)
        # A DAG that was heavy earlier (3 dedicated cores ratcheted)
        # and now runs its light tail (utilization 0.4).  The held
        # dedicated cores already cover the tail: the target must be
        # 3, not 3 + ceil(0.4) = 4 as the double-counting bug gave.
        dag = make_dag(total_bytes=2000, deadline=50_000.0)
        self._inject(policy, dag, cores_ratchet=3, util_ratchet=0.4)
        policy._reschedule(0.0)
        assert pool.target_cores == 3

    def test_light_dags_still_pack_by_utilization(self):
        policy = ConcordiaScheduler(predictor=None, release_hold_us=0.0)
        engine, pool = make_pool_with(policy, num_cores=8)
        dag_a = make_dag(total_bytes=2000, deadline=50_000.0, seed=1)
        dag_b = make_dag(total_bytes=2000, deadline=50_000.0, seed=2)
        self._inject(policy, dag_a, cores_ratchet=0, util_ratchet=0.6)
        self._inject(policy, dag_b, cores_ratchet=0, util_ratchet=0.3)
        policy._reschedule(0.0)
        # Two light DAGs pack onto ceil(0.6 + 0.3) = 1 shared core.
        assert pool.target_cores == 1

    def test_mixed_heavy_and_light_dags(self):
        policy = ConcordiaScheduler(predictor=None, release_hold_us=0.0)
        engine, pool = make_pool_with(policy, num_cores=8)
        dag_heavy = make_dag(total_bytes=2000, deadline=50_000.0, seed=3)
        dag_light = make_dag(total_bytes=2000, deadline=50_000.0, seed=4)
        # Transitioned DAG: dedicated cores dominate its light tail.
        self._inject(policy, dag_heavy, cores_ratchet=2, util_ratchet=0.9)
        self._inject(policy, dag_light, cores_ratchet=0, util_ratchet=0.5)
        policy._reschedule(0.0)
        # 2 dedicated + ceil(0.5) shared = 3 (bug gave 2+ceil(1.4)=4).
        assert pool.target_cores == 3


class TestOverheadAccounting:
    def test_prediction_and_scheduling_timers_disjoint(self):
        policy = ConcordiaScheduler(predictor=None)
        engine, pool = make_pool_with(policy)
        for i in range(5):
            release = 1000.0 * i
            engine.run_until(release)
            pool.release_slot([make_dag(total_bytes=5000, release=release,
                                        deadline=release + 4000.0,
                                        seed=i)])
        engine.run_until(10_000.0)
        assert policy.prediction_calls == 5
        assert policy.scheduling_calls >= 5
        assert policy.prediction_wall_s >= 0.0
        assert policy.scheduling_wall_s >= 0.0

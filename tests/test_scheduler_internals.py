"""Focused unit tests for Concordia scheduler internals."""

import numpy as np
import pytest

from repro.core.scheduler import ConcordiaScheduler, _DagState

from .test_pool import _FixedCost, _fast_os, make_dag
from .test_scheduler import make_pool_with


class TestHeldDemand:
    def _scheduler(self, hold):
        policy = ConcordiaScheduler(predictor=None, release_hold_us=hold)
        make_pool_with(policy)  # attaches a pool (and starts ticks)
        return policy

    def test_raising_demand_is_immediate(self):
        policy = self._scheduler(hold=300.0)
        assert policy._held_demand(0.0, 2) == 2
        assert policy._held_demand(10.0, 5) == 5

    def test_lowering_waits_for_window(self):
        policy = self._scheduler(hold=300.0)
        assert policy._held_demand(0.0, 6) == 6
        # Demand drops, but the recent peak dominates the window.
        assert policy._held_demand(100.0, 1) == 6
        assert policy._held_demand(250.0, 1) == 6
        # After the peak ages out, the lower demand takes effect.
        assert policy._held_demand(400.0, 1) == 1

    def test_zero_hold_is_instantaneous(self):
        policy = self._scheduler(hold=0.0)
        assert policy._held_demand(0.0, 6) == 6
        assert policy._held_demand(0.1, 1) == 1

    def test_window_prunes_old_entries(self):
        policy = self._scheduler(hold=100.0)
        for t in range(0, 2000, 20):
            policy._held_demand(float(t), 3)
        assert len(policy._demand_window) <= 7


class TestDagState:
    def test_ratchets_start_at_zero(self):
        dag = make_dag(total_bytes=5000)
        state = _DagState(dag)
        assert state.cores_ratchet == 0
        assert state.util_ratchet == 0.0
        assert state.frontier == {}

    def test_slot_start_populates_state(self):
        policy = ConcordiaScheduler(predictor=None)
        engine, pool = make_pool_with(policy)
        dag = make_dag(total_bytes=10_000)
        pool.release_slot([dag])
        state = policy._states[dag.dag_id]
        assert state.work_us == pytest.approx(
            sum(t.predicted_wcet_us for t in dag.tasks))
        # The initial critical path equals the entry task's longest
        # path to a sink.
        entry = [t for t in dag.tasks if t.predecessors_remaining == 0
                 or t.start_time is not None]
        assert state.critical_path_us <= max(t.path_us for t in dag.tasks)
        assert state.critical_path_us > 0

    def test_state_removed_on_completion(self):
        policy = ConcordiaScheduler(predictor=None)
        engine, pool = make_pool_with(policy)
        dag = make_dag(total_bytes=3000)
        pool.release_slot([dag])
        assert dag.dag_id in policy._states
        engine.run_until(50_000.0)
        assert dag.finished
        assert dag.dag_id not in policy._states

    def test_work_decreases_as_tasks_finish(self):
        policy = ConcordiaScheduler(predictor=None)
        engine, pool = make_pool_with(policy)
        dag = make_dag(total_bytes=20_000)
        pool.release_slot([dag])
        state = policy._states[dag.dag_id]
        initial_work = state.work_us
        # Run partway through the DAG.
        engine.run_until(engine.now + 100.0)
        if dag.dag_id in policy._states:
            assert policy._states[dag.dag_id].work_us <= initial_work


class TestOverheadAccounting:
    def test_prediction_and_scheduling_timers_disjoint(self):
        policy = ConcordiaScheduler(predictor=None)
        engine, pool = make_pool_with(policy)
        for i in range(5):
            release = 1000.0 * i
            engine.run_until(release)
            pool.release_slot([make_dag(total_bytes=5000, release=release,
                                        deadline=release + 4000.0,
                                        seed=i)])
        engine.run_until(10_000.0)
        assert policy.prediction_calls == 5
        assert policy.scheduling_calls >= 5
        assert policy.prediction_wall_s >= 0.0
        assert policy.scheduling_wall_s >= 0.0

"""Tests for the quantile decision tree (the paper's Algorithms 1-2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantile_tree import QuantileDecisionTree, TreeConfig


def _piecewise_dataset(n=3000, seed=0):
    """Runtime depends on feature 0 (strongly) and feature 1 (weakly)."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 10, size=(n, 3))
    y = 10.0 * np.floor(X[:, 0]) + 2.0 * (X[:, 1] > 5) + rng.normal(0, 0.3, n)
    return X, y


class TestFitting:
    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            QuantileDecisionTree().fit(np.empty((0, 2)), np.empty(0))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            QuantileDecisionTree().fit(np.zeros((5, 2)), np.zeros(4))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TreeConfig(max_depth=0)
        with pytest.raises(ValueError):
            TreeConfig(min_samples_leaf=0)
        with pytest.raises(ValueError):
            TreeConfig(leaf_buffer_capacity=0)

    def test_constant_target_yields_single_leaf(self):
        X = np.random.default_rng(1).uniform(size=(500, 4))
        tree = QuantileDecisionTree().fit(X, np.full(500, 7.0))
        assert tree.num_leaves == 1
        assert tree.predict_wcet(X[0]) == 7.0

    def test_splits_reduce_leaf_variance(self):
        X, y = _piecewise_dataset()
        tree = QuantileDecisionTree(TreeConfig(max_depth=8,
                                               min_samples_leaf=30)).fit(X, y)
        assert tree.num_leaves > 4
        leaves = tree.leaf_indices(X)
        total_var = y.var()
        within = sum(
            y[leaves == leaf].var() * (leaves == leaf).sum()
            for leaf in range(tree.num_leaves)
        ) / len(y)
        assert within < 0.15 * total_var

    def test_max_depth_bounds_leaves(self):
        X, y = _piecewise_dataset()
        tree = QuantileDecisionTree(TreeConfig(max_depth=2)).fit(X, y)
        assert tree.num_leaves <= 4

    def test_min_samples_leaf_respected(self):
        X, y = _piecewise_dataset(n=1000)
        min_leaf = 50
        tree = QuantileDecisionTree(
            TreeConfig(min_samples_leaf=min_leaf)
        ).fit(X, y)
        leaves = tree.leaf_indices(X)
        for leaf in range(tree.num_leaves):
            assert (leaves == leaf).sum() >= min_leaf


class TestPrediction:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            QuantileDecisionTree().leaf_index(np.zeros(3))

    def test_wcet_is_leaf_maximum(self):
        X, y = _piecewise_dataset()
        tree = QuantileDecisionTree().fit(X, y)
        leaves = tree.leaf_indices(X)
        x = X[0]
        leaf = tree.leaf_index(x)
        # The fitted buffers hold the (trailing window of) offline
        # samples in that leaf; the WCET is their maximum.
        expected = tree.leaves[leaf].max()
        assert tree.predict_wcet(x) == expected
        assert expected >= np.median(y[leaves == leaf])

    def test_wcet_covers_most_runtimes(self):
        X, y = _piecewise_dataset(seed=3)
        tree = QuantileDecisionTree().fit(X, y)
        predictions = np.array([tree.predict_wcet(x) for x in X[:500]])
        assert (predictions >= y[:500]).mean() > 0.97

    def test_predict_quantile_monotone(self):
        X, y = _piecewise_dataset()
        tree = QuantileDecisionTree().fit(X, y)
        x = X[10]
        assert tree.predict_quantile(x, 0.5) <= tree.predict_quantile(x, 0.99)


class TestOnlinePhase:
    def test_observe_updates_leaf(self):
        X, y = _piecewise_dataset()
        tree = QuantileDecisionTree().fit(X, y)
        x = X[0]
        before = tree.predict_wcet(x)
        tree.observe(x, before + 100.0)
        assert tree.predict_wcet(x) == before + 100.0

    def test_observe_only_affects_routed_leaf(self):
        X, y = _piecewise_dataset()
        tree = QuantileDecisionTree().fit(X, y)
        assert tree.num_leaves >= 2
        x0 = X[0]
        leaf0 = tree.leaf_index(x0)
        other = next(x for x in X if tree.leaf_index(x) != leaf0)
        before_other = tree.predict_wcet(other)
        tree.observe(x0, 1e6)
        assert tree.predict_wcet(other) == before_other

    def test_online_samples_displace_offline(self):
        """The paper replaces offline leaf samples with online ones."""
        X, y = _piecewise_dataset(n=600)
        config = TreeConfig(leaf_buffer_capacity=8, min_samples_leaf=50)
        tree = QuantileDecisionTree(config).fit(X, y)
        x = X[0]
        for _ in range(8):
            tree.observe(x, 1.0)
        assert tree.predict_wcet(x) == 1.0

    def test_reset_online_empties_buffers(self):
        X, y = _piecewise_dataset(n=600)
        tree = QuantileDecisionTree().fit(X, y)
        tree.reset_online()
        with pytest.raises(ValueError):
            tree.predict_wcet(X[0])
        tree.observe(X[0], 42.0)
        assert tree.predict_wcet(X[0]) == 42.0


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_partition_property(seed):
    """Every input routes to exactly one leaf and routing is stable."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-5, 5, size=(400, 3))
    y = X[:, 0] ** 2 + rng.normal(0, 0.1, 400)
    tree = QuantileDecisionTree(TreeConfig(min_samples_leaf=20)).fit(X, y)
    probes = rng.uniform(-10, 10, size=(50, 3))
    first = [tree.leaf_index(p) for p in probes]
    second = [tree.leaf_index(p) for p in probes]
    assert first == second
    assert all(0 <= leaf < tree.num_leaves for leaf in first)

"""Smoke tests for the per-figure experiment drivers.

These run each driver at a tiny slot budget: the goal is that every
table/figure pipeline executes end-to-end and returns well-formed
results (the shape assertions live in benchmarks/).
"""

import pytest

from repro.experiments import (
    fig03_traffic,
    fig04_motivation,
    fig06_ldpc,
    fig08_reclaim,
    fig09_cache,
    fig10_sched_latency,
    fig11_tail_latency,
    fig13_pwcet,
    fig15_overhead,
    tables,
)
from repro.experiments.common import (
    format_table,
    get_predictor,
    make_policy,
    run_simulation,
    scaled_slots,
)
from repro.ran.config import pool_20mhz_7cells


class TestCommon:
    def test_scaled_slots_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        assert scaled_slots(1000) == 2000
        monkeypatch.setenv("REPRO_SCALE", "0.001")
        assert scaled_slots(1000, minimum=300) == 300

    def test_make_policy_names(self):
        config = pool_20mhz_7cells()
        for name in ("concordia-noml", "flexran", "dedicated",
                     "shenango", "utilization"):
            policy = make_policy(name, config)
            assert policy is not None
        with pytest.raises(ValueError):
            make_policy("nonexistent", config)

    def test_predictor_cache_reuses(self):
        config = pool_20mhz_7cells()
        first = get_predictor(config, seed=77, num_slots=200)
        second = get_predictor(config, seed=77, num_slots=200)
        assert first is second

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1

    def test_run_simulation_policy_kwargs(self):
        config = pool_20mhz_7cells(num_cores=4)
        result = run_simulation(config, "shenango", num_slots=200,
                                policy_kwargs={
                                    "queue_delay_threshold_us": 42.0})
        assert result.latency.count > 0


class TestDrivers:
    def test_fig03(self):
        results = fig03_traffic.run(num_slots=5000)
        assert 0 < results["single_idle_fraction"] < 1
        assert "p95" in results["aggregate_cdf_kb"]

    def test_fig04_utilization(self):
        rows = fig04_motivation.run_utilization(num_slots=300)
        assert len(rows) == 3
        assert all(0 < r["utilization"] < 1 for r in rows)

    def test_fig06(self):
        results = fig06_ldpc.run(samples_per_point=200)
        assert results["runtimes"][(1, 3)].q50 > 0

    def test_fig08_reclaim(self):
        results = fig08_reclaim.run_reclaim(num_slots=300,
                                            loads=(0.1, 0.9))
        assert set(results["configs"]) == {"20MHz", "100MHz"}
        for series in results["configs"].values():
            assert len(series) == 2

    def test_fig09(self):
        results = fig09_cache.run(num_slots=500)
        assert set(results) == {"concordia", "flexran"}

    def test_fig10(self):
        results = fig10_sched_latency.run(num_slots=500)
        assert results["event_ratio"] > 0

    def test_fig11_subset(self):
        results = fig11_tail_latency.run(
            num_slots=300, workloads=("none",), configs=("20MHz",),
            policies=("flexran",))
        entry = results[("20MHz", "flexran", "none")]
        assert entry["count"] > 0

    def test_fig13_wcetless(self):
        results = fig13_pwcet.run_wcetless(num_slots=400)
        assert "concordia" in results
        assert "shenango-5us" in results

    def test_fig15_overhead(self):
        results = fig15_overhead.run_overhead(num_slots=200,
                                              cell_counts=(1, 2))
        assert results[2]["predictor_us"] >= 0

    def test_table5(self):
        results = tables.run_table5(num_slots=300)
        assert abs(sum(results["uplink_shares"].values()) - 1.0) < 1e-6
        assert abs(sum(results["downlink_shares"].values()) - 1.0) < 1e-6

    def test_table4(self):
        results = tables.run_table4(num_slots=400)
        for entry in results.values():
            assert entry["avg_total_us"] >= entry["avg_nonoffloaded_us"]


class TestMains:
    """main() renderers produce non-empty printable reports."""

    def test_fig03_main(self):
        text = fig03_traffic.main(num_slots=4000)
        assert "Figure 3" in text
        assert "idle fraction" in text

    def test_fig06_main(self):
        text = fig06_ldpc.main(samples_per_point=150)
        assert "Figure 6a" in text and "Figure 6b" in text

"""Tests for the Concordia predictor and offline training pipeline."""

import numpy as np
import pytest

from repro.core.models import LinearRegressionWCET
from repro.core.predictor import (
    HANDPICKED_FEATURES,
    ConcordiaPredictor,
    OfflineDataset,
)
from repro.core.training import collect_offline_dataset, train_predictor
from repro.ran.config import PoolConfig, cell_20mhz_fdd
from repro.ran.tasks import NUM_FEATURES, TaskInstance, TaskType


def _synthetic_dataset(n=800, seed=0):
    """Decode runtimes driven by task_codeblocks (feature 10)."""
    rng = np.random.default_rng(seed)
    dataset = OfflineDataset()
    for __ in range(n):
        features = rng.uniform(0, 10, NUM_FEATURES)
        runtime = 25.0 * features[10] + rng.gamma(2.0, 2.0)
        dataset.add(TaskType.LDPC_DECODE, features, runtime)
    return dataset


def _task(features, task_type=TaskType.LDPC_DECODE, base=100.0):
    task = TaskInstance(task_id=0, task_type=task_type, cell_name="c",
                        features=np.asarray(features, dtype=float),
                        base_cost_us=base)
    task.runtime_us = 110.0
    return task


class TestOfflineDataset:
    def test_add_and_arrays(self):
        dataset = _synthetic_dataset(n=10)
        X, y = dataset.arrays(TaskType.LDPC_DECODE)
        assert X.shape == (10, NUM_FEATURES)
        assert y.shape == (10,)
        assert len(dataset) == 10

    def test_task_types(self):
        dataset = _synthetic_dataset(n=5)
        assert dataset.task_types() == [TaskType.LDPC_DECODE]


class TestPredictor:
    def test_fit_selects_relevant_feature(self):
        predictor = ConcordiaPredictor().fit_offline(_synthetic_dataset())
        selected = predictor.selected_features[TaskType.LDPC_DECODE]
        assert 10 in selected  # task_codeblocks drives the runtime

    def test_handpicked_always_selected(self):
        predictor = ConcordiaPredictor().fit_offline(_synthetic_dataset())
        selected = predictor.selected_features[TaskType.LDPC_DECODE]
        assert set(HANDPICKED_FEATURES) <= set(selected)

    def test_prediction_covers_runtime(self):
        predictor = ConcordiaPredictor().fit_offline(_synthetic_dataset())
        rng = np.random.default_rng(1)
        covered = 0
        for __ in range(200):
            features = rng.uniform(0, 10, NUM_FEATURES)
            truth = 25.0 * features[10] + rng.gamma(2.0, 2.0)
            predicted = predictor.predict_task(_task(features))
            covered += predicted >= truth
        assert covered / 200 > 0.9

    def test_unmodelled_task_returns_none(self):
        predictor = ConcordiaPredictor().fit_offline(_synthetic_dataset())
        task = _task(np.zeros(NUM_FEATURES), task_type=TaskType.FFT)
        assert predictor.predict_task(task) is None

    def test_observe_updates_online_buffer(self):
        predictor = ConcordiaPredictor().fit_offline(_synthetic_dataset())
        features = np.full(NUM_FEATURES, 5.0)
        task = _task(features)
        before = predictor.predict_task(task)
        task.runtime_us = before + 500.0
        predictor.observe_task(task)
        assert predictor.predict_task(task) == pytest.approx(before + 500.0)
        assert predictor.observations_made == 1

    def test_min_samples_skips_sparse_tasks(self):
        dataset = _synthetic_dataset(n=10)
        predictor = ConcordiaPredictor().fit_offline(dataset,
                                                     min_samples=100)
        assert TaskType.LDPC_DECODE not in predictor.models

    def test_custom_model_factory(self):
        predictor = ConcordiaPredictor(
            model_factory=LinearRegressionWCET
        ).fit_offline(_synthetic_dataset())
        model = predictor.models[TaskType.LDPC_DECODE]
        assert isinstance(model, LinearRegressionWCET)


class TestTrainingPipeline:
    @pytest.fixture(scope="class")
    def small_pool(self):
        return PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=4,
                          deadline_us=2000.0)

    def test_collect_offline_dataset(self, small_pool):
        dataset = collect_offline_dataset(small_pool, num_slots=150,
                                          seed=11)
        assert len(dataset) > 500
        types = set(dataset.task_types())
        assert TaskType.LDPC_DECODE in types
        assert TaskType.FFT in types
        X, y = dataset.arrays(TaskType.LDPC_DECODE)
        assert (y > 0).all()
        assert X.shape[1] == NUM_FEATURES

    def test_train_predictor_end_to_end(self, small_pool):
        predictor = train_predictor(small_pool, num_slots=250, seed=11)
        assert TaskType.LDPC_DECODE in predictor.models
        # A realistic decode task must receive a sane prediction.
        dataset = collect_offline_dataset(small_pool, num_slots=30, seed=12)
        X, y = dataset.arrays(TaskType.LDPC_DECODE)
        task = _task(X[0])
        predicted = predictor.predict_task(task)
        assert predicted is not None
        assert 0 < predicted < 50 * max(y)

"""Tests for the metrics collectors."""

import numpy as np
import pytest

from repro.sim.metrics import Metrics


class TestCoreTimeAccounting:
    def test_reserved_integral(self):
        metrics = Metrics(num_cores=4)
        metrics.on_reserved_change(0.0, 4)
        metrics.on_reserved_change(100.0, 2)  # 4 cores for 100 µs
        metrics.finalize(300.0)  # 2 cores for 200 µs
        assert metrics.reserved_core_time_us == pytest.approx(800.0)
        assert metrics.total_core_time_us == pytest.approx(1200.0)
        assert metrics.reclaimed_fraction == pytest.approx(1 - 800 / 1200)

    def test_busy_integral_independent(self):
        metrics = Metrics(num_cores=2)
        metrics.on_reserved_change(0.0, 2)
        metrics.on_running_change(0.0, 1)
        metrics.on_running_change(50.0, 2)
        metrics.finalize(100.0)
        assert metrics.busy_core_time_us == pytest.approx(150.0)
        assert metrics.vran_utilization == pytest.approx(150.0 / 200.0)
        assert metrics.idle_fraction_upper_bound == pytest.approx(
            1 - 150.0 / 200.0)

    def test_best_effort_complement(self):
        metrics = Metrics(num_cores=3)
        metrics.on_reserved_change(0.0, 1)
        metrics.finalize(100.0)
        assert metrics.best_effort_core_time_us == pytest.approx(200.0)


class TestLatencies:
    def test_summary_percentiles(self):
        metrics = Metrics(num_cores=1)
        for latency in np.linspace(100, 1100, 1001):
            metrics.on_slot_complete(float(latency), 1000.0)
        summary = metrics.latency_summary(1000.0)
        assert summary.count == 1001
        assert summary.p50_us == pytest.approx(600.0, rel=0.01)
        assert summary.max_us == 1100.0
        assert summary.deadline_us == 1000.0
        assert 0.0 < summary.miss_fraction < 0.15
        assert not summary.meets_four_nines

    def test_meets_five_nines(self):
        metrics = Metrics(num_cores=1)
        for __ in range(1000):
            metrics.on_slot_complete(500.0, 1000.0)
        summary = metrics.latency_summary(1000.0)
        assert summary.meets_five_nines
        assert summary.miss_fraction == 0.0

    def test_empty_summary_raises(self):
        with pytest.raises(ValueError):
            Metrics(1).latency_summary(1000.0)


class TestSchedulingEvents:
    def test_wakeup_histogram_buckets(self):
        metrics = Metrics(num_cores=1)
        for latency in (0.5, 2.0, 5.0, 20.0, 100.0, 300.0):
            metrics.on_wakeup(latency)
        hist = metrics.wakeup_histogram()
        assert hist["0-1"] == 1
        assert hist["1-3"] == 1
        assert hist["3-7"] == 1
        assert hist["15-31"] == 1
        assert hist[">255"] == 1
        assert sum(hist.values()) == 6

    def test_event_counters(self):
        metrics = Metrics(num_cores=1)
        metrics.on_wakeup(1.0)
        metrics.on_yield()
        metrics.on_yield()
        assert metrics.scheduling_events == 3
        # A wakeup alone is NOT a preemption: the woken core may have
        # been idle.  Preemptions are reported separately by the pool
        # when a best-effort occupant is actually displaced.
        assert metrics.best_effort_preemptions == 0
        metrics.on_preemption()
        assert metrics.best_effort_preemptions == 1
        assert metrics.scheduling_events == 3

    def test_registry_snapshot_round_trips(self):
        metrics = Metrics(num_cores=2)
        metrics.on_wakeup(5.0)
        metrics.on_slot_complete(400.0, 500.0)
        metrics.on_slot_complete(600.0, 500.0)
        snap = metrics.snapshot()
        assert snap["counters"]["slots/completed"] == 2
        assert snap["counters"]["slots/missed"] == 1
        assert snap["counters"]["sched/wakeups"] == 1
        assert snap["gauges"]["coretime/num_cores"] == 2
        hist = snap["histograms"]["sched/wakeup_latency_us"]
        assert hist["count"] == 1
        import json
        json.dumps(snap)  # must be pure JSON

    def test_task_records_opt_in(self):
        metrics = Metrics(num_cores=1)
        metrics.on_task_complete("fft", 10.0, 9.0)
        assert metrics.task_records == []
        metrics.record_tasks = True
        metrics.on_task_complete("fft", 10.0, 9.0)
        assert metrics.task_records == [("fft", 10.0, 9.0)]

"""Tests for the OS wakeup-latency model (Fig. 10 calibration)."""

import numpy as np
import pytest

from repro.sim.osmodel import (
    COLLOCATED_BUCKETS,
    ISOLATED_BUCKETS,
    LatencyBucket,
    WakeupLatencyModel,
)


@pytest.fixture
def model():
    return WakeupLatencyModel(rng=np.random.default_rng(0))


class TestBuckets:
    def test_probabilities_normalized(self):
        for buckets in (ISOLATED_BUCKETS, COLLOCATED_BUCKETS):
            assert sum(b.probability for b in buckets) == pytest.approx(
                1.0, abs=1e-6)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            WakeupLatencyModel(isolated_buckets=(
                LatencyBucket(0.0, 0.0, 1.0),))


class TestSampling:
    def test_samples_within_bucket_ranges(self, model):
        for collocated in (False, True):
            buckets = COLLOCATED_BUCKETS if collocated else ISOLATED_BUCKETS
            lo = min(b.low_us for b in buckets)
            hi = max(b.high_us for b in buckets)
            samples = [model.sample(collocated) for _ in range(5000)]
            assert all(lo <= s <= hi for s in samples)

    def test_body_is_microseconds(self, model):
        samples = np.array([model.sample(False) for _ in range(20000)])
        assert np.median(samples) < 5.0

    def test_isolated_tail_capped_at_200us(self, model):
        samples = np.array([model.sample(False) for _ in range(50000)])
        assert samples.max() <= 200.0

    def test_collocation_has_heavier_tail(self):
        rng = np.random.default_rng(1)
        model = WakeupLatencyModel(rng=rng)
        isolated = np.array([model.sample(False) for _ in range(40000)])
        collocated = np.array([model.sample(True) for _ in range(40000)])
        assert np.percentile(collocated, 99.9) > np.percentile(isolated, 99.9)
        # The §2.3 kernel non-preemptible stall: only under collocation.
        assert collocated.max() > 400.0

    def test_kernel_stall_is_rare(self, model):
        samples = np.array([model.sample(True) for _ in range(100000)])
        assert (samples > 400.0).mean() < 0.002


class TestExpectedBody:
    def test_excludes_kernel_stall(self, model):
        body = model.expected_body_us(True)
        assert 1.0 <= body <= 30.0

    def test_collocated_body_not_smaller(self, model):
        assert model.expected_body_us(True) >= \
            model.expected_body_us(False) * 0.8

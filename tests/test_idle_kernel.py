"""A/B byte-identity tests for the idle-slot/window batch kernel.

The window kernel (``Simulation._fill_window``) pre-draws traffic,
UE allocations and HARQ state for a whole window of slots, builds the
non-idle DAGs through one pooled ``build_many`` call and fast-forwards
idle slots as batched accounting.  It is only admissible because the
result payload is byte-identical to the per-slot legacy path: every
RNG stream must be consumed in exactly the per-slot order, and every
release/deadline float must replay the engine's recurring-timer
accumulation.

These tests run the same scenario with the kernel on (default window)
and off (``slot_window=0`` → legacy per-slot build) and require equal
digests — including a HARQ scenario, whose per-cell retransmission
state threads through the window pre-pass, and a low-load scenario
where the idle fast path actually engages.
"""

import pytest

from repro.exec.digest import result_digest
from repro.ran.config import PoolConfig, cell_20mhz_fdd
from repro.scenario import Scenario, build_simulation


def _scenario(**overrides) -> Scenario:
    base = dict(
        pool={"name": "20mhz"},
        policy="concordia-noml",
        workload="redis",
        load_fraction=0.5,
        seed=23,
    )
    base.update(overrides)
    return Scenario(**base)


def _ab_digests(scenario: Scenario, slots: int):
    """(windowed digest, legacy digest, windowed simulation)."""
    windowed = build_simulation(scenario)
    result_on = windowed.run(slots)
    legacy = build_simulation(scenario, slot_window=0)
    result_off = legacy.run(slots)
    assert legacy.kernel_stats["windows"] == 0
    return result_digest(result_on), result_digest(result_off), windowed


class TestWindowKernelByteIdentity:
    def test_windowed_matches_legacy(self):
        on, off, sim = _ab_digests(_scenario(), slots=60)
        assert on == off
        # The kernel must actually have run for the A/B to mean much.
        assert sim.kernel_stats["windows"] > 0
        assert sim.kernel_stats["window_slots"] == 60

    def test_windowed_matches_legacy_with_harq(self):
        on, off, sim = _ab_digests(_scenario(harq=True), slots=60)
        assert on == off
        assert sim.kernel_stats["windows"] > 0

    def test_flexran_policy_windowed_matches_legacy(self):
        on, off, sim = _ab_digests(_scenario(policy="flexran"), slots=60)
        assert on == off
        assert sim.kernel_stats["windows"] > 0

    def test_low_load_idle_fast_path_engages(self):
        # One cell at 2 % load: most slots carry no traffic in either
        # direction, so the pre-pass must detect and batch them.
        pool = PoolConfig(cells=(cell_20mhz_fdd("c0"),), num_cores=4,
                          deadline_us=2000.0)
        scenario = _scenario(pool=pool, load_fraction=0.02,
                             workload="none")
        on, off, sim = _ab_digests(scenario, slots=120)
        assert on == off
        assert sim.kernel_stats["idle_slots"] > 0

    def test_partial_trailing_window(self):
        # A slot count that is not a window multiple exercises the
        # clamped final fill.
        on, off, sim = _ab_digests(_scenario(), slots=37)
        assert on == off
        assert sim.kernel_stats["window_slots"] == 37

    def test_window_size_does_not_change_results(self):
        scenario = _scenario()
        digests = set()
        for window in (1, 8, 64):
            simulation = build_simulation(scenario, slot_window=window)
            digests.add(result_digest(simulation.run(40)))
        assert len(digests) == 1


class TestKernelSelfDisable:
    """Modes whose draws depend on execution feedback must opt out."""

    @pytest.mark.parametrize("overrides", [
        dict(allocation="mac"),
        dict(traffic="profiling"),
    ])
    def test_kernel_disables_itself(self, overrides):
        simulation = build_simulation(_scenario(**overrides))
        simulation.run(20)
        assert simulation.kernel_stats["windows"] == 0
        assert simulation.kernel_stats["slots"] == 20

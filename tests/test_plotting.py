"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.analysis.plotting import bar_chart, histogram_chart, line_chart


class TestBarChart:
    def test_basic(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10, title="T")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert lines[2].count("#") == 10  # the max bar is full width
        assert lines[1].count("#") == 5

    def test_zero_values(self):
        chart = bar_chart(["a", "b"], [0.0, 3.0])
        assert "| 0" in chart.splitlines()[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])

    def test_unit_suffix(self):
        chart = bar_chart(["x"], [5.0], unit="us")
        assert chart.endswith("5us")


class TestLineChart:
    def test_monotone_series_renders(self):
        chart = line_chart([0, 1, 2, 3], [0, 1, 2, 3], height=4, width=20)
        assert chart.count("*") >= 4

    def test_constant_series(self):
        chart = line_chart([0, 1, 2], [5, 5, 5])
        assert "*" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([1], [1])
        with pytest.raises(ValueError):
            line_chart([1, 2], [1])


class TestHistogram:
    def test_counts_sum(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=500)
        chart = histogram_chart(samples, bins=8)
        totals = [int(line.rsplit(" ", 1)[1])
                  for line in chart.splitlines()]
        assert sum(totals) == 500

    def test_log_mode(self):
        samples = [0.0] * 1000 + [10.0]
        linear = histogram_chart(samples, bins=2)
        logged = histogram_chart(samples, bins=2, log_counts=True)
        # In log mode the rare bucket still gets a visible bar.
        assert "#" in logged.splitlines()[-1]
        assert linear != logged

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            histogram_chart([])

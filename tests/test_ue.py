"""Tests for UE modelling: MCS table, link adaptation, allocations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ran.ue import (
    CODEBLOCK_BITS,
    MCS_TABLE,
    SlotLoad,
    UeAllocation,
    bytes_to_allocations,
    mcs_for_snr,
)


class TestMcsTable:
    def test_has_28_entries(self):
        assert len(MCS_TABLE) == 28

    def test_indices_sequential(self):
        assert [e.index for e in MCS_TABLE] == list(range(28))

    def test_spectral_efficiency_increases(self):
        eff = [e.spectral_efficiency for e in MCS_TABLE]
        assert all(b > a for a, b in zip(eff, eff[1:]))

    def test_snr_thresholds_increase(self):
        snr = [e.min_snr_db for e in MCS_TABLE]
        assert all(b >= a for a, b in zip(snr, snr[1:]))

    def test_modulation_families(self):
        orders = {e.modulation_order for e in MCS_TABLE}
        assert orders == {2, 4, 6, 8}


class TestLinkAdaptation:
    def test_low_snr_gets_qpsk(self):
        assert mcs_for_snr(-10.0).modulation_order == 2

    def test_high_snr_gets_256qam(self):
        assert mcs_for_snr(30.0).modulation_order == 8

    @given(st.floats(min_value=-20, max_value=40, allow_nan=False))
    @settings(max_examples=100)
    def test_selected_mcs_threshold_satisfied(self, snr):
        entry = mcs_for_snr(snr)
        assert entry.min_snr_db <= snr or entry.index == 0


class TestUeAllocation:
    def _alloc(self, tbs):
        return UeAllocation(ue_id=0, tbs_bytes=tbs, mcs=MCS_TABLE[10],
                            layers=2, snr_db=12.0)

    def test_codeblock_segmentation(self):
        assert self._alloc(0).num_codeblocks == 0
        assert self._alloc(1).num_codeblocks == 1
        assert self._alloc(CODEBLOCK_BITS // 8).num_codeblocks == 1
        assert self._alloc(CODEBLOCK_BITS // 8 + 1).num_codeblocks == 2

    def test_negative_tbs_rejected(self):
        with pytest.raises(ValueError):
            self._alloc(-1)

    def test_zero_layers_rejected(self):
        with pytest.raises(ValueError):
            UeAllocation(ue_id=0, tbs_bytes=10, mcs=MCS_TABLE[0],
                         layers=0, snr_db=0.0)


class TestBytesToAllocations:
    def test_zero_bytes_empty(self):
        assert bytes_to_allocations(0, np.random.default_rng(0)) == ()

    def test_conserves_bytes(self):
        rng = np.random.default_rng(1)
        for total in (100, 5000, 50_000):
            allocations = bytes_to_allocations(total, rng)
            assert sum(a.tbs_bytes for a in allocations) == total

    def test_respects_max_ues(self):
        rng = np.random.default_rng(2)
        for _ in range(50):
            allocations = bytes_to_allocations(100_000, rng, max_ues=4)
            assert 1 <= len(allocations) <= 4

    def test_respects_max_layers(self):
        rng = np.random.default_rng(3)
        allocations = bytes_to_allocations(50_000, rng, max_layers=2)
        assert all(1 <= a.layers <= 2 for a in allocations)

    def test_busier_slots_have_more_ues_on_average(self):
        rng = np.random.default_rng(4)
        small = np.mean([len(bytes_to_allocations(500, rng))
                         for _ in range(200)])
        large = np.mean([len(bytes_to_allocations(40_000, rng))
                         for _ in range(200)])
        assert large > small

    @given(st.integers(min_value=1, max_value=200_000),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_allocation_invariants(self, total, seed):
        rng = np.random.default_rng(seed)
        allocations = bytes_to_allocations(total, rng, max_ues=16)
        assert sum(a.tbs_bytes for a in allocations) == total
        assert all(a.tbs_bytes > 0 for a in allocations)
        assert len({a.ue_id for a in allocations}) == len(allocations)


class TestSlotLoad:
    def test_aggregates(self):
        rng = np.random.default_rng(5)
        allocations = bytes_to_allocations(20_000, rng)
        load = SlotLoad("cell", 3, True, allocations)
        assert load.total_bytes == 20_000
        assert load.num_ues == len(allocations)
        assert load.total_codeblocks == sum(a.num_codeblocks
                                            for a in allocations)
        assert not load.idle

    def test_idle_slot(self):
        load = SlotLoad("cell", 0, False, ())
        assert load.idle
        assert load.total_layers == 0

"""Tests for the repro.obs observability layer.

Covers the event bus, the metrics registry, the Chrome trace exporter
(structural validation: monotonic timestamps, matched B/E pairs,
per-core tracks), the deadline-miss post-mortem analyzer, and the
telemetry path through the repro.exec result cache.
"""

import json

import pytest

from repro.core.scheduler import ConcordiaScheduler
from repro.obs.events import (CacheEvent, CoreEvent, EventBus, TaskEvent,
                              TickEvent, WakeupEvent, global_bus)
from repro.obs.export import chrome_trace, metrics_rows
from repro.obs.postmortem import (CAUSE_QUEUEING, CAUSE_WAKEUP, CAUSE_WCET,
                                  analyze_miss)
from repro.obs.registry import MetricsRegistry
from repro.ran.config import PoolConfig, cell_20mhz_fdd
from repro.sim.runner import Simulation


def small_config(num_cores=4):
    return PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=num_cores,
                      deadline_us=2000.0)


def recorded_run(num_slots=80, workload="none", num_cores=4, seed=5):
    bus = EventBus()
    simulation = Simulation(
        small_config(num_cores), ConcordiaScheduler(predictor=None),
        workload=workload, load_fraction=0.5, seed=seed, event_bus=bus)
    result = simulation.run(num_slots)
    return result, bus


class TestEventBus:
    def test_disabled_bus_records_nothing_via_guard(self):
        bus = EventBus(enabled=False)
        # Emit sites guard on .enabled; a disabled bus is never fed.
        if bus.enabled:
            bus.emit(TickEvent(0.0, "tick", 0, 0, 0, False))
        assert len(bus) == 0

    def test_capacity_bound_counts_drops(self):
        bus = EventBus(capacity=2)
        for i in range(5):
            bus.emit(TickEvent(float(i), "tick", 0, 0, 0, False))
        assert len(bus) == 2
        assert bus.dropped == 3
        bus.clear()
        assert len(bus) == 0 and bus.dropped == 0

    def test_subscribers_see_drops_too(self):
        bus = EventBus(capacity=1)
        seen = []
        bus.subscribe(seen.append)
        bus.subscribe(seen.append)  # duplicate registration is a no-op
        for i in range(3):
            bus.emit(TickEvent(float(i), "tick", 0, 0, 0, False))
        assert len(seen) == 3  # subscribers bypass the capacity bound
        bus.unsubscribe(seen.append)
        bus.emit(TickEvent(9.0, "tick", 0, 0, 0, False))
        assert len(seen) == 3

    def test_of_kind_filters(self):
        bus = EventBus()
        bus.emit(TickEvent(0.0, "tick", 0, 0, 0, False))
        bus.emit(TickEvent(1.0, "slot_start", 0, 0, 0, False))
        bus.emit(WakeupEvent(2.0, "wakeup", 5.0, core=1))
        assert len(list(bus.of_kind("tick"))) == 1
        assert len(list(bus.of_kind("tick", "wakeup"))) == 2

    def test_events_have_no_dict(self):
        # slots=True keeps events small and construction cheap (frozen
        # dataclasses cost ~3x more per emit, which the overhead guard
        # does not tolerate at task-lifecycle emission rates).
        event = TaskEvent(0.0, "task_done", dag_id=1)
        with pytest.raises(AttributeError):
            event.arbitrary_attribute = 5.0


class TestRegistry:
    def test_counter_gauge_histogram_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("a").value += 3
        registry.gauge("b").set(1.5)
        hist = registry.histogram("h", (1.0, 10.0, float("inf")))
        hist.observe(0.5)
        hist.observe(55.0)
        payload = registry.as_dict()
        json.dumps(payload)
        rebuilt = MetricsRegistry.from_dict(payload)
        assert rebuilt.value("a") == 3
        assert rebuilt.value("b") == 1.5
        assert rebuilt.get("h").count == 2
        assert rebuilt.get("h").labelled_counts() == \
            registry.get("h").labelled_counts()

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_histogram_rejects_nan(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", (1.0, float("inf")))
        with pytest.raises(ValueError):
            hist.observe(float("nan"))

    def test_metrics_rows_flatten(self):
        registry = MetricsRegistry()
        registry.counter("c").value += 1
        registry.histogram("h", (1.0, float("inf"))).observe(0.5)
        rows = dict(metrics_rows(registry))
        assert rows["c"] == 1
        assert rows["h{0-1}"] == 1
        assert rows["h.count"] == 1


class TestChromeTrace:
    @pytest.fixture(scope="class")
    def run(self):
        return recorded_run()

    def test_simulation_emits_all_event_families(self, run):
        __, bus = run
        kinds = {type(e).__name__ for e in bus.events}
        assert {"TaskEvent", "CoreEvent", "WakeupEvent",
                "TickEvent"} <= kinds

    def test_trace_is_json_with_monotonic_timestamps(self, run):
        __, bus = run
        trace = chrome_trace(bus.events)
        json.dumps(trace)
        events = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        assert events, "trace must contain real events"
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)

    def test_duration_pairs_match(self, run):
        __, bus = run
        trace = chrome_trace(bus.events)
        stacks = {}
        for event in trace["traceEvents"]:
            if event["ph"] == "B":
                stacks.setdefault((event["pid"], event["tid"]),
                                  []).append(event["name"])
            elif event["ph"] == "E":
                stack = stacks.get((event["pid"], event["tid"]))
                assert stack, f"E without B on {event}"
                assert stack.pop() == event["name"]
        assert all(not s for s in stacks.values()), \
            "every B must have a matching E"

    def test_per_core_and_per_dag_tracks(self, run):
        __, bus = run
        trace = chrome_trace(bus.events)
        names = {(e["pid"], e.get("tid")): e["args"]["name"]
                 for e in trace["traceEvents"] if e["ph"] == "M"
                 and e["name"] == "thread_name"}
        core_tids = {tid for (pid, tid) in names if pid == 1}
        assert core_tids  # at least one core track
        assert core_tids <= set(range(4))
        assert all(names[(1, tid)] == f"core {tid}" for tid in core_tids)
        assert any(pid == 2 for (pid, __) in names), "DAG tracks exist"
        # Task executions land on core tracks.
        assert any(e["ph"] == "B" and e["pid"] == 1
                   for e in trace["traceEvents"])

    def test_counter_series_present(self, run):
        __, bus = run
        trace = chrome_trace(bus.events)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert all("reserved" in e["args"] for e in counters)

    def test_unfinished_dags_are_pruned(self):
        events = [
            TaskEvent(0.0, "dag_release", dag_id=1, task_id=0,
                      cell="c", deadline_us=500.0),
            # No dag_complete: the DAG's B must be pruned.  (Tasks in
            # flight at simulation end leave no task_done record at
            # all, so no task B can ever dangle.)
        ]
        trace = chrome_trace(events)
        assert [e for e in trace["traceEvents"] if e["ph"] == "B"] == []


class TestPostMortem:
    def _missed_dag_events(self, wakeup_latency=400.0):
        """A slot whose only delay is one long wakeup tail."""
        return [
            TaskEvent(0.0, "dag_release", dag_id=7, task_id=3,
                      cell="cell0", deadline_us=300.0),
            WakeupEvent(0.0, "wakeup", wakeup_latency, core=2),
            TaskEvent(wakeup_latency + 50.0, "task_done", dag_id=7,
                      task_id=0, task_type="fft", cell="cell0", core=2,
                      runtime_us=50.0, predicted_us=60.0,
                      enqueue_us=0.0, start_us=wakeup_latency),
            TaskEvent(wakeup_latency + 50.0, "dag_complete", dag_id=7,
                      task_id=3, cell="cell0",
                      runtime_us=wakeup_latency + 50.0,
                      deadline_us=300.0),
        ]

    def test_wakeup_tail_named_dominant(self):
        report = analyze_miss(self._missed_dag_events())
        assert report.dag_id == 7
        assert report.missed
        assert report.tardiness_us == pytest.approx(450.0 - 300.0)
        assert report.contributions[CAUSE_WAKEUP] == pytest.approx(400.0)
        assert report.contributions[CAUSE_QUEUEING] == pytest.approx(0.0)
        assert report.dominant_cause == CAUSE_WAKEUP
        assert "wakeup latency" in report.render()

    def test_queueing_without_wakeup_in_flight(self):
        events = self._missed_dag_events()
        # Remove the wakeup: the same wait now reads as queueing.
        events = [e for e in events if not isinstance(e, WakeupEvent)]
        report = analyze_miss(events)
        assert report.contributions[CAUSE_QUEUEING] == pytest.approx(400.0)
        assert report.dominant_cause == CAUSE_QUEUEING

    def test_underprediction_accounted(self):
        events = [
            TaskEvent(0.0, "dag_release", dag_id=1, task_id=0,
                      cell="c", deadline_us=100.0),
            TaskEvent(150.0, "task_done", dag_id=1, task_id=0,
                      task_type="fft", cell="c", core=0,
                      runtime_us=150.0, predicted_us=20.0,
                      enqueue_us=0.0, start_us=0.0),
            TaskEvent(150.0, "dag_complete", dag_id=1, task_id=0,
                      cell="c", runtime_us=150.0, deadline_us=100.0),
        ]
        report = analyze_miss(events)
        assert report.contributions[CAUSE_WCET] == pytest.approx(130.0)
        assert report.dominant_cause == CAUSE_WCET

    def test_picks_worst_dag_by_default(self):
        events = (self._missed_dag_events(wakeup_latency=400.0)
                  + [TaskEvent(0.0, "dag_release", dag_id=8, task_id=0,
                               cell="c", deadline_us=500.0),
                     TaskEvent(10.0, "dag_complete", dag_id=8, task_id=0,
                               cell="c", runtime_us=10.0,
                               deadline_us=500.0)])
        assert analyze_miss(events).dag_id == 7
        assert analyze_miss(events, dag_id=8).dag_id == 8

    def test_no_completions_raises(self):
        with pytest.raises(ValueError):
            analyze_miss([])

    def test_real_simulation_analyzable(self):
        __, bus = recorded_run(num_slots=40)
        report = analyze_miss(bus.events)
        assert report.tasks > 0
        total = sum(report.contributions.values())
        assert total >= 0.0
        assert report.dominant_cause in (CAUSE_WAKEUP, CAUSE_WCET,
                                         CAUSE_QUEUEING)


class TestPreemptionSplit:
    def test_no_workload_means_no_preemptions(self):
        result, __ = recorded_run(num_slots=60, workload="none")
        counters = result.telemetry["counters"]
        assert counters["sched/wakeups"] > 0
        assert counters["sched/best_effort_preemptions"] == 0

    def test_active_workload_makes_wakeups_preemptions(self):
        result, bus = recorded_run(num_slots=60, workload="redis")
        counters = result.telemetry["counters"]
        assert counters["sched/wakeups"] > 0
        # Redis is always active, so every wakeup displaces it.
        assert counters["sched/best_effort_preemptions"] == \
            counters["sched/wakeups"]
        wakeups = [e for e in bus.events
                   if isinstance(e, WakeupEvent) and e.kind == "wakeup"]
        assert wakeups and all(e.preempted for e in wakeups)


class TestTelemetryThroughCache:
    def test_cached_result_carries_telemetry(self, tmp_path):
        from repro.exec.batch import run_batch
        from repro.exec.cache import ResultCache
        from repro.experiments.common import make_spec

        spec = make_spec(small_config(), "concordia-noml",
                         workload="none", load_fraction=0.4,
                         num_slots=50, seed=3)
        cache = ResultCache(tmp_path / "cache")
        first = run_batch([spec], cache=cache)
        assert first.outcomes[0].status == "ok"
        second = run_batch([spec], cache=cache)
        assert second.outcomes[0].status == "cached"
        live, cached = first.results()[0], second.results()[0]
        assert cached.metrics is None  # live objects don't survive
        assert cached.telemetry == live.telemetry
        assert cached.telemetry["counters"]["slots/completed"] > 0
        hist = cached.telemetry["histograms"]["sched/wakeup_latency_us"]
        assert hist["count"] == \
            cached.telemetry["counters"]["sched/wakeups"]

    def test_cache_traffic_on_global_bus(self, tmp_path):
        from repro.exec.batch import run_batch
        from repro.exec.cache import ResultCache
        from repro.experiments.common import make_spec

        spec = make_spec(small_config(), "concordia-noml",
                         workload="none", load_fraction=0.4,
                         num_slots=50, seed=4)
        cache = ResultCache(tmp_path / "cache")
        bus = global_bus()
        bus.enabled = True
        bus.clear()
        try:
            run_batch([spec], cache=cache)
            run_batch([spec], cache=cache)
            kinds = [e.kind for e in bus.events
                     if isinstance(e, CacheEvent)]
            assert kinds == ["cache_miss", "cache_hit"]
            assert all(e.key and e.label for e in bus.events
                       if isinstance(e, CacheEvent))
        finally:
            bus.enabled = False
            bus.clear()


class TestTraceRecorderLifecycle:
    def test_attach_is_idempotent(self):
        from repro.sim.tracing import TraceRecorder

        simulation = Simulation(
            small_config(), ConcordiaScheduler(predictor=None),
            workload="none", load_fraction=0.4, seed=2)
        recorder = TraceRecorder()
        recorder.attach(simulation)
        recorder.attach(simulation)  # must NOT double-record
        simulation.run(30)
        tasks = len(recorder.tasks)
        counted = {}
        for trace in recorder.tasks:
            key = (trace.dag_id, trace.task_type, trace.start_us)
            counted[key] = counted.get(key, 0) + 1
        assert tasks > 0
        assert all(n == 1 for n in counted.values())

    def test_detach_restores_previous_observer(self):
        from repro.sim.tracing import TraceRecorder

        simulation = Simulation(
            small_config(), ConcordiaScheduler(predictor=None),
            workload="none", load_fraction=0.4, seed=2)
        seen = []

        def previous_observer(task):
            seen.append(task)

        simulation.pool.task_observer = previous_observer
        recorder = TraceRecorder().attach(simulation)
        assert simulation.pool.task_observer is not previous_observer
        recorder.detach()
        assert simulation.pool.task_observer is previous_observer
        recorder.detach()  # second detach is a no-op

    def test_consume_bus_rebuilds_task_traces(self):
        from repro.sim.tracing import TraceRecorder

        bus = EventBus()
        recorder = TraceRecorder().consume_bus(bus)
        simulation = Simulation(
            small_config(), ConcordiaScheduler(predictor=None),
            workload="none", load_fraction=0.4, seed=2, event_bus=bus)
        simulation.run(30)
        assert recorder.tasks
        trace = recorder.tasks[0]
        assert trace.finish_us >= trace.start_us >= trace.enqueue_us
        assert trace.slot_index >= 0


class TestCoreEventConsistency:
    def test_reserved_counts_track_pool_transitions(self):
        __, bus = recorded_run(num_slots=60)
        last = None
        for event in bus.events:
            if isinstance(event, CoreEvent) and \
                    event.kind in ("core_reserve", "core_release"):
                if last is not None:
                    delta = event.reserved - last
                    assert delta == (1 if event.kind == "core_reserve"
                                     else -1)
                last = event.reserved

    def test_tick_events_emitted_for_both_kinds(self):
        __, bus = recorded_run(num_slots=40)
        kinds = {e.kind for e in bus.events if isinstance(e, TickEvent)}
        assert kinds == {"tick", "slot_start"}

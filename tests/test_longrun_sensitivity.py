"""Smoke tests for the long-run validation and sensitivity drivers."""

import pytest

from repro.experiments import longrun, sensitivity


class TestLongrun:
    def test_windowed_run(self):
        results = longrun.run(num_slots=250, num_windows=2)
        assert len(results["windows"]) == 2
        assert results["total_slots"] > 0
        assert results["total_misses"] == sum(
            w["misses"] for w in results["windows"])
        assert 0.0 <= results["miss_fraction"] <= 1.0
        assert results["first_half_misses"] + \
            results["second_half_misses"] == results["total_misses"]

    def test_main_renders(self):
        text = longrun.main(num_slots=250)
        assert "Long-run reliability" in text
        assert "window 0" in text


class TestSensitivity:
    def test_single_knob_pair(self):
        pair = sensitivity._run_pair("runtime_noise", 2.0, num_slots=200,
                                     seed=3)
        assert set(pair) == {"concordia", "flexran"}
        for result in pair.values():
            assert result.latency.count > 0

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError):
            sensitivity._run_pair("voltage", 1.0, num_slots=50, seed=3)

    def test_scaled_buckets_stay_normalized(self):
        for factor in (0.0, 0.5, 2.0):
            buckets = sensitivity._scaled_buckets(factor)
            total = sum(b.probability for b in buckets)
            assert total == pytest.approx(1.0, abs=1e-9)
            # Only the >=400us buckets were scaled.
            slow = [b for b in buckets if b.low_us >= 400.0]
            assert all(b.probability >= 0 for b in slow)

"""Tests for HARQ retransmissions and the static-partition baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.flexran import FlexRanScheduler
from repro.baselines.static import StaticPartitionScheduler
from repro.ran.config import PoolConfig, cell_20mhz_fdd, pool_20mhz_7cells
from repro.ran.harq import HarqConfig, HarqManager, block_error_probability
from repro.ran.ue import MCS_TABLE, UeAllocation
from repro.sim.runner import Simulation


def _alloc(snr_margin_db=0.5, tbs=8000, mcs_index=10, ue_id=0):
    mcs = MCS_TABLE[mcs_index]
    return UeAllocation(ue_id=ue_id, tbs_bytes=tbs, mcs=mcs, layers=1,
                        snr_db=mcs.min_snr_db + snr_margin_db)


class TestBler:
    def test_typical_margin_near_ten_percent(self):
        bler = block_error_probability(0.5, codeblocks=4)
        assert 0.05 <= bler <= 0.15

    def test_decreases_with_margin(self):
        values = [block_error_probability(m, 8) for m in (0, 1, 2, 4, 8)]
        assert all(b > a for a, b in zip(values[1:], values))

    def test_grows_with_codeblocks(self):
        assert block_error_probability(1.0, 16) > \
            block_error_probability(1.0, 1)

    def test_bounded(self):
        assert block_error_probability(-10.0, 100) <= 0.8
        assert block_error_probability(50.0, 1) >= 0.0

    @given(st.floats(min_value=-10, max_value=30, allow_nan=False),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=100)
    def test_always_a_probability(self, margin, cbs):
        assert 0.0 <= block_error_probability(margin, cbs) <= 0.8


class TestHarqManager:
    def test_failed_block_retransmitted_after_rtt(self):
        manager = HarqManager(HarqConfig(rtt_slots=4),
                              rng=np.random.default_rng(0))
        # Force failure with a hopeless margin.
        bad = _alloc(snr_margin_db=-8.0)
        out = manager.process_slot(0, (bad,))
        assert out == (bad,)
        assert manager.pending_count == 1
        # Not due yet.
        assert manager.process_slot(2, ()) == ()
        # Due at slot 4: comes back.
        again = manager.process_slot(4, ())
        assert len(again) == 1
        assert again[0].tbs_bytes == bad.tbs_bytes
        assert manager.retransmissions == 1

    def test_gives_up_after_max_attempts(self):
        class AlwaysFail:
            def random(self):
                return 0.0  # every draw lands below any positive BLER

        manager = HarqManager(HarqConfig(rtt_slots=1, max_attempts=2,
                                         combining_gain_db=0.0),
                              rng=AlwaysFail())
        bad = _alloc(snr_margin_db=-20.0)
        manager.process_slot(0, (bad,))
        manager.process_slot(1, ())
        manager.process_slot(2, ())
        assert manager.residual_losses == 1
        assert manager.pending_count == 0

    def test_good_channel_rarely_fails(self):
        manager = HarqManager(rng=np.random.default_rng(2))
        for slot in range(300):
            manager.process_slot(slot, (_alloc(snr_margin_db=8.0,
                                               ue_id=slot),))
        assert manager.block_error_rate < 0.01

    def test_combining_gain_reduces_second_failures(self):
        manager = HarqManager(HarqConfig(rtt_slots=1,
                                         combining_gain_db=6.0),
                              rng=np.random.default_rng(3))
        for slot in range(600):
            manager.process_slot(slot, (_alloc(snr_margin_db=0.0,
                                               ue_id=slot),))
        # Nearly everything recovers within the HARQ budget.
        assert manager.residual_loss_rate < 0.01

    def test_runner_integration_adds_load(self):
        config = pool_20mhz_7cells(num_cores=8)
        base = Simulation(config, FlexRanScheduler(), workload="none",
                          load_fraction=0.5, seed=9)
        with_harq = Simulation(config, FlexRanScheduler(), workload="none",
                               load_fraction=0.5, seed=9, harq=True)
        r0 = base.run(400)
        r1 = with_harq.run(400)
        assert r0.harq is None
        assert r1.harq is not None
        assert 0.02 <= r1.harq["block_error_rate"] <= 0.2
        assert r1.harq["retransmissions"] > 0
        # Retransmissions add processing work.
        assert r1.vran_utilization >= r0.vran_utilization


class TestStaticPartition:
    def test_validation(self):
        with pytest.raises(ValueError):
            StaticPartitionScheduler(0)

    def test_partition_exceeding_pool_rejected(self):
        config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=2,
                            deadline_us=2000.0)
        with pytest.raises(ValueError):
            Simulation(config, StaticPartitionScheduler(5))

    def test_partition_never_moves(self):
        config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=4,
                            deadline_us=2000.0)
        sim = Simulation(config, StaticPartitionScheduler(2),
                         workload="redis", load_fraction=0.4, seed=5)
        result = sim.run(300)
        # Exactly half the pool was reserved the whole time.
        assert result.reclaimed_fraction == pytest.approx(0.5, abs=0.02)

    def test_small_partition_misses_large_survives(self):
        config = pool_20mhz_7cells(num_cores=8)

        def run(k):
            sim = Simulation(config, StaticPartitionScheduler(k),
                             workload="none", load_fraction=0.8, seed=6)
            return sim.run(400).latency

        small = run(2)
        large = run(8)
        assert small.miss_fraction > large.miss_fraction
        assert large.miss_fraction < 0.01

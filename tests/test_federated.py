"""Tests for the federated core-allocation rule (Li et al. 2017)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.federated import (
    CoreDemand,
    aggregate_demand,
    federated_core_demand,
)


class TestBasicRule:
    def test_no_work_needs_no_cores(self):
        demand = federated_core_demand(0.0, 0.0, 1000.0)
        assert demand == CoreDemand(0, False)

    def test_sequential_dag_with_ample_slack_needs_one_core(self):
        demand = federated_core_demand(100.0, 100.0, 1000.0)
        assert demand.cores == 1
        assert not demand.critical

    def test_classic_formula(self):
        # C=1000, L=200, S=400: ceil((1000-200)/(400-200)) = 4 cores.
        demand = federated_core_demand(1000.0, 200.0, 400.0,
                                       critical_margin_us=0.0)
        assert demand.cores == 4

    def test_critical_when_slack_below_path(self):
        demand = federated_core_demand(500.0, 400.0, 350.0)
        assert demand.critical

    def test_critical_margin_widens_critical_stage(self):
        # Slack just above the path but within the margin -> critical.
        demand = federated_core_demand(500.0, 400.0, 410.0,
                                       critical_margin_us=20.0)
        assert demand.critical
        relaxed = federated_core_demand(500.0, 400.0, 410.0,
                                        critical_margin_us=5.0)
        assert not relaxed.critical

    def test_negative_inputs_raise(self):
        with pytest.raises(ValueError):
            federated_core_demand(-1.0, 0.0, 100.0)
        with pytest.raises(ValueError):
            federated_core_demand(10.0, -1.0, 100.0)

    def test_path_exceeding_work_raises(self):
        with pytest.raises(ValueError):
            federated_core_demand(10.0, 20.0, 100.0)


class TestAggregate:
    def test_sum_and_critical_or(self):
        total = aggregate_demand([CoreDemand(2, False), CoreDemand(3, False)])
        assert total == CoreDemand(5, False)
        total = aggregate_demand([CoreDemand(2, False), CoreDemand(0, True)])
        assert total.critical

    def test_empty(self):
        assert aggregate_demand([]) == CoreDemand(0, False)


@given(
    work=st.floats(min_value=0.1, max_value=1e6, allow_nan=False),
    path_fraction=st.floats(min_value=0.0, max_value=1.0),
    slack=st.floats(min_value=0.1, max_value=1e6, allow_nan=False),
)
@settings(max_examples=300)
def test_demand_properties(work, path_fraction, slack):
    """Non-critical demands satisfy the greedy-scheduler bound."""
    path = work * path_fraction
    demand = federated_core_demand(work, path, slack, critical_margin_us=0.0)
    if demand.critical:
        assert slack <= path
        return
    n = demand.cores
    assert n >= 1
    # The federated bound: with n cores a greedy schedule finishes within
    # L + (C - L) / n, which must not exceed the slack.
    finish_bound = path + (work - path) / n
    assert finish_bound <= slack + 1e-6 * max(1.0, slack)
    # Minimality: one fewer core would overrun (except at n == 1).
    if n > 1:
        worse = path + (work - path) / (n - 1)
        assert worse > slack - 1e-9 * max(1.0, slack)


@given(
    work=st.floats(min_value=1.0, max_value=1e5),
    path=st.floats(min_value=0.0, max_value=1.0),
    slack_a=st.floats(min_value=1.0, max_value=1e5),
    slack_b=st.floats(min_value=1.0, max_value=1e5),
)
@settings(max_examples=200)
def test_monotone_in_slack(work, path, slack_a, slack_b):
    """Less slack never needs fewer cores."""
    path_us = work * path
    lo, hi = sorted((slack_a, slack_b))
    tight = federated_core_demand(work, path_us, lo, critical_margin_us=0.0)
    loose = federated_core_demand(work, path_us, hi, critical_margin_us=0.0)
    if tight.critical:
        return  # critical dominates any finite demand
    assert not loose.critical
    assert tight.cores >= loose.cores

"""Tests for slot DAG construction (paper Fig. 1 / Fig. 16)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ran.config import cell_100mhz_tdd, cell_20mhz_fdd
from repro.ran.dag import MAX_CBS_PER_TASK, DagBuilder
from repro.ran.tasks import CostModel, TaskType
from repro.ran.ue import SlotLoad, bytes_to_allocations


@pytest.fixture
def builder():
    return DagBuilder(CostModel(rng=np.random.default_rng(0)),
                      rng=np.random.default_rng(1))


def _load(total_bytes, uplink=True, seed=2, slot_index=0):
    rng = np.random.default_rng(seed)
    allocations = bytes_to_allocations(total_bytes, rng)
    return SlotLoad("cell", slot_index, uplink, allocations)


def _topo_check(dag):
    """Tasks must be stored so edges only point to other tasks in the DAG,
    and the graph must be acyclic with consistent predecessor counts."""
    tasks = set(id(t) for t in dag.tasks)
    indegree = {id(t): 0 for t in dag.tasks}
    for task in dag.tasks:
        for successor in task.successors:
            assert id(successor) in tasks
            indegree[id(successor)] += 1
    for task in dag.tasks:
        assert indegree[id(task)] == task.predecessors_remaining
    # Kahn's algorithm terminates iff acyclic.
    ready = [t for t in dag.tasks if indegree[id(t)] == 0]
    seen = 0
    while ready:
        task = ready.pop()
        seen += 1
        for successor in task.successors:
            indegree[id(successor)] -= 1
            if indegree[id(successor)] == 0:
                ready.append(successor)
    assert seen == len(dag.tasks)


class TestUplinkDag:
    def test_idle_slot_is_front_end_only(self, builder):
        dag = builder.build(_load(0), cell_100mhz_tdd(), 0.0, 1500.0)
        assert [t.task_type for t in dag.tasks] == [TaskType.FFT]

    def test_structure(self, builder):
        load = _load(20_000)
        dag = builder.build(load, cell_100mhz_tdd(), 0.0, 1500.0)
        types = [t.task_type for t in dag.tasks]
        assert types.count(TaskType.FFT) == 1
        assert types.count(TaskType.CRC_CHECK) == 1
        assert types.count(TaskType.CHANNEL_ESTIMATION) == load.num_ues
        assert types.count(TaskType.EQUALIZATION) == load.num_ues
        _topo_check(dag)

    def test_decode_group_sizes(self, builder):
        load = _load(30_000)
        dag = builder.build(load, cell_100mhz_tdd(), 0.0, 1500.0)
        decode_cbs = [int(t.feature("task_codeblocks")) for t in dag.tasks
                      if t.task_type is TaskType.LDPC_DECODE]
        assert sum(decode_cbs) == load.total_codeblocks
        assert all(1 <= cbs <= MAX_CBS_PER_TASK for cbs in decode_cbs)

    def test_fft_is_single_entry(self, builder):
        dag = builder.build(_load(10_000), cell_100mhz_tdd(), 0.0, 1500.0)
        entries = dag.entry_tasks()
        assert len(entries) == 1
        assert entries[0].task_type is TaskType.FFT

    def test_crc_is_sink_joining_all_decodes(self, builder):
        dag = builder.build(_load(10_000), cell_100mhz_tdd(), 0.0, 1500.0)
        crc = [t for t in dag.tasks if t.task_type is TaskType.CRC_CHECK][0]
        decodes = [t for t in dag.tasks
                   if t.task_type is TaskType.LDPC_DECODE]
        assert crc.predecessors_remaining == len(decodes)
        assert crc.successors == []


class TestDownlinkDag:
    def test_idle_slot_is_control_only(self, builder):
        dag = builder.build(_load(0, uplink=False), cell_100mhz_tdd(),
                            0.0, 1500.0)
        types = [t.task_type for t in dag.tasks]
        assert types == [TaskType.MODULATION, TaskType.IFFT]

    def test_structure(self, builder):
        load = _load(50_000, uplink=False)
        dag = builder.build(load, cell_100mhz_tdd(), 0.0, 1500.0)
        types = [t.task_type for t in dag.tasks]
        assert types.count(TaskType.CRC_ATTACH) == 1
        assert types.count(TaskType.PRECODING) == 1
        assert types.count(TaskType.IFFT) == 1
        assert types.count(TaskType.RATE_MATCH) == load.num_ues
        _topo_check(dag)

    def test_ifft_is_sink(self, builder):
        dag = builder.build(_load(50_000, uplink=False), cell_100mhz_tdd(),
                            0.0, 1500.0)
        sinks = [t for t in dag.tasks if not t.successors]
        assert len(sinks) == 1
        assert sinks[0].task_type is TaskType.IFFT


class TestDagInstance:
    def test_deadline_and_latency(self, builder):
        dag = builder.build(_load(5000), cell_20mhz_fdd(), 100.0, 2100.0)
        assert dag.deadline_us == 2100.0
        assert dag.latency_us is None
        dag.completion_us = 900.0
        assert dag.latency_us == 800.0

    def test_remaining_work_decreases_after_finish(self, builder):
        dag = builder.build(_load(10_000), cell_100mhz_tdd(), 0.0, 1500.0)
        wcet = lambda t: t.base_cost_us
        before = dag.remaining_work_us(wcet, 0.0)
        task = dag.entry_tasks()[0]
        task.finish_time = 10.0
        dag.tasks_remaining -= 1
        after = dag.remaining_work_us(wcet, 10.0)
        assert after == pytest.approx(before - task.base_cost_us)

    def test_critical_path_bounds(self, builder):
        dag = builder.build(_load(10_000), cell_100mhz_tdd(), 0.0, 1500.0)
        wcet = lambda t: t.base_cost_us
        path = dag.remaining_critical_path_us(wcet, 0.0)
        work = dag.remaining_work_us(wcet, 0.0)
        longest_single = max(t.base_cost_us for t in dag.tasks)
        assert longest_single <= path <= work

    def test_finished_dag_has_zero_path(self, builder):
        dag = builder.build(_load(0), cell_100mhz_tdd(), 0.0, 1500.0)
        dag.tasks[0].finish_time = 5.0
        dag.tasks_remaining = 0
        assert dag.remaining_critical_path_us(lambda t: 1.0, 5.0) == 0.0


@given(st.integers(min_value=0, max_value=120_000),
       st.booleans(),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_dag_invariants(total_bytes, uplink, seed):
    builder = DagBuilder(CostModel(rng=np.random.default_rng(0)),
                         rng=np.random.default_rng(1))
    load = _load(total_bytes, uplink=uplink, seed=seed)
    dag = builder.build(load, cell_100mhz_tdd(), 0.0, 1500.0)
    assert dag.tasks_remaining == len(dag.tasks) > 0
    assert all(t.dag is dag for t in dag.tasks)
    assert all(t.base_cost_us > 0 for t in dag.tasks)
    _topo_check(dag)
    # Codeblock conservation through decode/encode groups.
    coding = TaskType.LDPC_DECODE if uplink else TaskType.LDPC_ENCODE
    group_cbs = sum(int(t.feature("task_codeblocks")) for t in dag.tasks
                    if t.task_type is coding)
    assert group_cbs == load.total_codeblocks

"""Unit and property tests for the leaf-node ring buffer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ring_buffer import RingBuffer


class TestBasics:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_empty_max_raises(self):
        with pytest.raises(ValueError):
            RingBuffer(4).max()

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError):
            RingBuffer(4).quantile(0.5)

    def test_push_and_max(self):
        buf = RingBuffer(3)
        buf.push(1.0)
        buf.push(5.0)
        buf.push(2.0)
        assert buf.max() == 5.0
        assert len(buf) == 3
        assert buf.full

    def test_eviction_order_is_fifo(self):
        buf = RingBuffer(3)
        buf.extend([1.0, 2.0, 3.0, 4.0])
        assert list(buf.values()) == [2.0, 3.0, 4.0]

    def test_max_recomputed_after_evicting_maximum(self):
        buf = RingBuffer(3)
        buf.extend([9.0, 1.0, 2.0])
        buf.push(3.0)  # evicts 9.0
        assert buf.max() == 3.0

    def test_duplicate_maximum_eviction(self):
        buf = RingBuffer(3)
        buf.extend([5.0, 5.0, 1.0])
        buf.push(2.0)  # evicts the first 5.0; a second 5.0 remains
        assert buf.max() == 5.0

    def test_nan_push_rejected(self):
        buf = RingBuffer(3)
        buf.push(1.0)
        with pytest.raises(ValueError, match="NaN"):
            buf.push(float("nan"))
        # The rejected push must not have perturbed any state.
        assert len(buf) == 1
        assert buf.max() == 1.0
        buf.push(2.0)
        assert buf.max() == 2.0

    def test_nan_rejected_via_extend_and_replace(self):
        buf = RingBuffer(4)
        with pytest.raises(ValueError, match="NaN"):
            buf.extend([1.0, float("nan"), 3.0])
        # extend pushes in order: the values before the NaN landed.
        assert list(buf.values()) == [1.0]
        with pytest.raises(ValueError, match="NaN"):
            buf.replace([np.nan])

    def test_infinities_are_legal_samples(self):
        buf = RingBuffer(2)
        buf.extend([float("inf"), 1.0])
        assert buf.max() == float("inf")
        buf.push(2.0)  # evicts the inf; recompute must recover
        assert buf.max() == 2.0

    def test_quantile_interpolates(self):
        buf = RingBuffer(10)
        buf.extend(range(1, 11))
        assert buf.quantile(0.0) == 1.0
        assert buf.quantile(1.0) == 10.0
        assert 5.0 <= buf.quantile(0.5) <= 6.0

    def test_clear(self):
        buf = RingBuffer(3)
        buf.extend([1.0, 2.0])
        buf.clear()
        assert len(buf) == 0
        with pytest.raises(ValueError):
            buf.max()

    def test_replace_keeps_trailing_window(self):
        buf = RingBuffer(3)
        buf.replace([1.0, 2.0, 3.0, 4.0, 5.0])
        assert list(buf.values()) == [3.0, 4.0, 5.0]
        assert buf.max() == 5.0


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
                min_size=1, max_size=200),
       st.integers(min_value=1, max_value=20))
@settings(max_examples=150)
def test_matches_naive_sliding_window(values, capacity):
    """The buffer must always equal the trailing window of pushes."""
    buf = RingBuffer(capacity)
    for i, value in enumerate(values):
        buf.push(value)
        window = values[max(0, i + 1 - capacity): i + 1]
        assert len(buf) == len(window)
        assert buf.max() == max(window)
        assert np.allclose(buf.values(), window)

"""Tests for the buffered random-variate helper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.fastrng import FastRng


class TestDistributions:
    def test_random_in_unit_interval(self):
        rng = FastRng(np.random.default_rng(0))
        samples = [rng.random() for _ in range(50_000)]
        assert all(0.0 <= s < 1.0 for s in samples)
        assert np.mean(samples) == pytest.approx(0.5, abs=0.01)

    def test_uniform_range(self):
        rng = FastRng(np.random.default_rng(1))
        samples = [rng.uniform(5.0, 7.0) for _ in range(20_000)]
        assert min(samples) >= 5.0
        assert max(samples) < 7.0
        assert np.mean(samples) == pytest.approx(6.0, abs=0.02)

    def test_standard_normal_moments(self):
        rng = FastRng(np.random.default_rng(2))
        samples = np.array([rng.standard_normal() for _ in range(50_000)])
        assert samples.mean() == pytest.approx(0.0, abs=0.02)
        assert samples.std() == pytest.approx(1.0, abs=0.02)

    def test_normal_location_scale(self):
        rng = FastRng(np.random.default_rng(3))
        samples = np.array([rng.normal(10.0, 2.0) for _ in range(50_000)])
        assert samples.mean() == pytest.approx(10.0, abs=0.05)
        assert samples.std() == pytest.approx(2.0, abs=0.05)


class TestBuffering:
    def test_block_refill_transparent(self):
        """Values keep flowing across the 16384-sample block boundary."""
        rng = FastRng(np.random.default_rng(4))
        samples = [rng.random() for _ in range(40_000)]
        assert len(set(np.round(samples[:100], 12))) > 90

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_per_seed(self, seed):
        a = FastRng(np.random.default_rng(seed))
        b = FastRng(np.random.default_rng(seed))
        assert [a.random() for _ in range(10)] == \
            [b.random() for _ in range(10)]
        assert [a.standard_normal() for _ in range(10)] == \
            [b.standard_normal() for _ in range(10)]

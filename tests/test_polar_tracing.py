"""Tests for the polar-code kernels and the execution tracer."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.flexran import FlexRanScheduler
from repro.phy.polar import PolarCode, bsc_llrs, polar_decode_sc, polar_encode
from repro.ran.config import PoolConfig, cell_20mhz_fdd
from repro.sim.runner import Simulation
from repro.sim.tracing import TraceRecorder, render_gantt


class TestPolarCode:
    def test_validation(self):
        with pytest.raises(ValueError):
            PolarCode(block_length=6, message_length=3)  # not power of 2
        with pytest.raises(ValueError):
            PolarCode(block_length=8, message_length=0)
        with pytest.raises(ValueError):
            PolarCode(block_length=8, message_length=9)

    def test_information_set_size(self):
        code = PolarCode(block_length=64, message_length=32)
        info = code.information_set
        assert len(info) == 32
        assert len(set(info.tolist())) == 32
        assert code.rate == 0.5

    def test_noiseless_roundtrip(self):
        code = PolarCode(block_length=128, message_length=64)
        rng = np.random.default_rng(0)
        for __ in range(20):
            message = rng.integers(0, 2, 64).astype(np.uint8)
            codeword = polar_encode(code, message)
            llrs = bsc_llrs(codeword, 0.01)
            decoded = polar_decode_sc(code, llrs)
            assert np.array_equal(decoded, message)

    def test_corrects_noisy_channel(self):
        """Low-rate polar code over a 5% BSC decodes most blocks."""
        code = PolarCode(block_length=256, message_length=64,
                         design_p=0.05)
        rng = np.random.default_rng(1)
        successes = 0
        for __ in range(30):
            message = rng.integers(0, 2, 64).astype(np.uint8)
            codeword = polar_encode(code, message)
            noisy = codeword ^ (rng.random(256) < 0.05).astype(np.uint8)
            decoded = polar_decode_sc(code, bsc_llrs(noisy, 0.05))
            successes += np.array_equal(decoded, message)
        assert successes >= 24

    def test_higher_rate_less_robust(self):
        rng = np.random.default_rng(2)

        def block_error_rate(k):
            code = PolarCode(block_length=128, message_length=k,
                             design_p=0.08)
            errors = 0
            for __ in range(40):
                message = rng.integers(0, 2, k).astype(np.uint8)
                codeword = polar_encode(code, message)
                noisy = codeword ^ (rng.random(128) < 0.08).astype(np.uint8)
                decoded = polar_decode_sc(code, bsc_llrs(noisy, 0.08))
                errors += not np.array_equal(decoded, message)
            return errors / 40

        assert block_error_rate(96) >= block_error_rate(32)

    def test_wrong_message_length(self):
        code = PolarCode(block_length=8, message_length=4)
        with pytest.raises(ValueError):
            polar_encode(code, np.zeros(3, dtype=np.uint8))
        with pytest.raises(ValueError):
            polar_decode_sc(code, np.zeros(7))

    def test_bsc_llr_validation(self):
        with pytest.raises(ValueError):
            bsc_llrs(np.zeros(4, dtype=np.uint8), 0.7)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        code = PolarCode(block_length=64, message_length=24)
        message = rng.integers(0, 2, 24).astype(np.uint8)
        codeword = polar_encode(code, message)
        decoded = polar_decode_sc(code, bsc_llrs(codeword, 0.01))
        assert np.array_equal(decoded, message)


@pytest.fixture(scope="module")
def traced_run():
    config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=4,
                        deadline_us=2000.0)
    simulation = Simulation(config, FlexRanScheduler(), workload="none",
                            load_fraction=0.5, seed=2)
    recorder = TraceRecorder().attach(simulation)
    simulation.run(200)
    return recorder


class TestTraceRecorder:
    def test_records_every_task(self, traced_run):
        assert len(traced_run.tasks) > 200
        assert traced_run.dropped == 0
        for trace in traced_run.tasks[:50]:
            assert trace.finish_us >= trace.start_us >= trace.enqueue_us
            assert trace.runtime_us > 0

    def test_capacity_drops(self):
        recorder = TraceRecorder(capacity=1)
        config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=2,
                            deadline_us=2000.0)
        simulation = Simulation(config, FlexRanScheduler(),
                                workload="none", load_fraction=0.5, seed=3)
        recorder.attach(simulation)
        simulation.run(20)
        assert len(recorder.tasks) == 1
        assert recorder.dropped > 0

    def test_for_dag_filters(self, traced_run):
        dag_id = traced_run.tasks[0].dag_id
        subset = traced_run.for_dag(dag_id)
        assert subset
        assert all(t.dag_id == dag_id for t in subset)

    def test_slowest_dags_ranked(self, traced_run):
        slow = traced_run.slowest_dags(top=3)
        assert len(slow) == 3
        assert len(set(slow)) == 3

    def test_json_export(self, traced_run, tmp_path):
        path = tmp_path / "trace.json"
        traced_run.to_json(path)
        data = json.loads(path.read_text())
        assert len(data) == len(traced_run.tasks)
        assert "task_type" in data[0]

    def test_csv_export(self, traced_run, tmp_path):
        path = tmp_path / "trace.csv"
        traced_run.to_csv(path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(traced_run.tasks) + 1

    def test_empty_csv_raises(self, tmp_path):
        with pytest.raises(ValueError):
            TraceRecorder().to_csv(tmp_path / "x.csv")


class TestGantt:
    def test_renders_dag_timeline(self, traced_run):
        dag_id = traced_run.slowest_dags(top=1)[0]
        chart = render_gantt(traced_run.for_dag(dag_id), title="slot")
        assert "slot" in chart
        assert "#" in chart
        assert "us total" in chart

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            render_gantt([])

"""Tests for the scenario assembly layer and the RNG-stream refactor."""

import numpy as np
import pytest

from repro.ran.config import PoolConfig, pool_20mhz_7cells
from repro.scenario import (
    NAMED_POOLS,
    POLICY_NAMES,
    Scenario,
    build_policy,
    build_simulation,
    pool_config_from_dict,
    pool_config_to_dict,
    resolve_pool,
)
from repro.sim.runner import RESULT_SCHEMAS, Simulation, SimulationResult


def small_pool(num_cores: int = 4) -> PoolConfig:
    base = pool_20mhz_7cells(num_cores=num_cores)
    return PoolConfig(cells=base.cells[:2], num_cores=num_cores,
                      deadline_us=base.deadline_us)


class TestResolvePool:
    def test_pool_config_passthrough(self):
        config = small_pool()
        assert resolve_pool(config) is config

    def test_named_reference(self):
        assert resolve_pool({"name": "20mhz"}) == pool_20mhz_7cells()

    def test_named_reference_with_overrides(self):
        pool = resolve_pool({"name": "20mhz", "num_cores": 12})
        assert pool.num_cores == 12

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown pool name"):
            resolve_pool({"name": "42mhz"})

    def test_inline_cells_dict(self):
        config = small_pool()
        assert resolve_pool(pool_config_to_dict(config)) == config

    def test_dict_without_name_or_cells_raises(self):
        with pytest.raises(ValueError):
            resolve_pool({"num_cores": 4})

    def test_non_dict_raises(self):
        with pytest.raises(TypeError):
            resolve_pool(["20mhz"])

    def test_every_named_pool_resolves(self):
        for name in NAMED_POOLS:
            assert isinstance(resolve_pool({"name": name}), PoolConfig)


class TestScenario:
    def test_round_trip_with_named_pool(self):
        scenario = Scenario(pool={"name": "20mhz"}, policy="flexran",
                            workload="redis", load_fraction=0.75, seed=3,
                            harq=True, allocation="mac")
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone == scenario

    def test_round_trip_inlines_pool_config(self):
        scenario = Scenario(pool=small_pool())
        payload = scenario.to_dict()
        clone = Scenario.from_dict(payload)
        assert resolve_pool(clone.pool) == small_pool()

    def test_unknown_schema_raises(self):
        payload = Scenario(pool={"name": "20mhz"}).to_dict()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="scenario schema"):
            Scenario.from_dict(payload)

    def test_invalid_allocation_raises(self):
        with pytest.raises(ValueError, match="allocation"):
            Scenario(pool={"name": "20mhz"}, allocation="roundrobin")

    def test_invalid_traffic_raises(self):
        with pytest.raises(ValueError, match="traffic"):
            Scenario(pool={"name": "20mhz"}, traffic="replay")

    def test_profiling_traffic_property(self):
        assert Scenario(pool={"name": "20mhz"},
                        traffic="profiling").profiling_traffic
        assert not Scenario(pool={"name": "20mhz"}).profiling_traffic


class TestBuildPolicy:
    def test_all_names_instantiate(self):
        config = small_pool()
        for name in POLICY_NAMES:
            if name == "concordia":
                continue  # needs a trained predictor; covered elsewhere
            policy = build_policy(name, config)
            assert hasattr(policy, "name")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown policy"):
            build_policy("edf", small_pool())


class TestBuildSimulation:
    def test_scenario_and_legacy_paths_agree(self):
        scenario = Scenario(pool=small_pool(), policy="concordia-noml",
                            workload="redis", load_fraction=0.4, seed=11)
        from_scenario = build_simulation(scenario).run(40)
        legacy = Simulation(
            small_pool(), build_policy("concordia-noml", small_pool()),
            workload="redis", load_fraction=0.4, seed=11,
        ).run(40)
        a, b = from_scenario.to_dict(), legacy.to_dict()
        # Wall-clock overhead counters and the scenario's policy label
        # (name vs live-instance normalization) legitimately differ.
        for payload in (a, b):
            payload["telemetry"]["counters"] = {
                k: v for k, v in payload["telemetry"]["counters"].items()
                if not k.endswith("_wall_s")}
            payload.pop("scenario")
        assert a == b

    def test_result_embeds_scenario(self):
        scenario = Scenario(pool={"name": "20mhz", "num_cores": 4},
                            policy="concordia-noml", seed=2)
        result = build_simulation(scenario).run(20)
        assert result.scenario is not None
        assert result.scenario["policy"] == "concordia-noml"
        assert result.scenario["pool"] == {"name": "20mhz", "num_cores": 4}

    def test_live_policy_instance_wins(self):
        scenario = Scenario(pool=small_pool(), policy="flexran")
        policy = build_policy("shenango", small_pool())
        simulation = build_simulation(scenario, policy=policy)
        assert simulation.policy is policy


class TestRngStreams:
    """Satellite: per-subsystem streams are spawn-keyed, not sequential."""

    def test_same_seed_reproduces(self):
        scenario = Scenario(pool=small_pool(), policy="concordia-noml",
                            seed=5)
        a = build_simulation(scenario).run(30)
        b = build_simulation(scenario).run(30)
        assert a.latency.p99_us == b.latency.p99_us
        assert a.vran_utilization == b.vran_utilization

    def test_different_seeds_differ(self):
        base = dict(pool=small_pool(), policy="concordia-noml")
        a = build_simulation(Scenario(seed=1, **base)).run(30)
        b = build_simulation(Scenario(seed=2, **base)).run(30)
        assert a.latency.mean_us != b.latency.mean_us

    def test_per_cell_traffic_streams_distinct(self):
        sim = build_simulation(
            Scenario(pool=small_pool(), policy="concordia-noml", seed=9))
        draws = [[gen.downlink.next_slot() for _ in range(8)]
                 for gen in sim.traffic]
        assert draws[0] != draws[1]

    def test_optional_subsystems_do_not_shift_traffic_streams(self):
        # Before the spawn-key refactor, HARQ/MAC constructors consumed
        # draws from the shared traffic RNG, so toggling them reseeded
        # every cell's generator.  Streams are keyed now.
        base = dict(pool=small_pool(), policy="concordia-noml", seed=9)
        plain = build_simulation(Scenario(**base))
        harq = build_simulation(Scenario(harq=True, **base))
        mac = build_simulation(Scenario(allocation="mac", **base))
        reference = [plain.traffic[i].downlink.next_slot() for i in (0, 1)]
        assert [harq.traffic[i].downlink.next_slot() for i in (0, 1)] \
            == reference
        assert [mac.traffic[i].downlink.next_slot() for i in (0, 1)] \
            == reference

    def test_root_streams_pairwise_distinct(self):
        sim = build_simulation(
            Scenario(pool=small_pool(), policy="concordia-noml", seed=0))
        rngs = [sim._rng_cost, sim._rng_traffic, sim._rng_alloc,
                sim._rng_os, sim._rng_cache, sim._rng_mix]
        firsts = [rng.random() for rng in rngs]
        assert len(set(firsts)) == len(firsts)


class TestDagStreamIndependence:
    """Tentpole: per-DAG batched draws keyed by (cell, slot, direction)."""

    def test_build_order_does_not_change_runtimes(self):
        from repro.ran.dag import DagBuilder
        from repro.ran.tasks import CostModel

        sim = build_simulation(
            Scenario(pool=small_pool(), policy="concordia-noml", seed=3))
        loads = {i: sim._loads_for_slot(i, 0) for i in (0, 1)}

        def build_all(order):
            builder = DagBuilder(CostModel(rng=np.random.default_rng(0)),
                                 rng=np.random.default_rng(1),
                                 seed_seq=np.random.SeedSequence(42))
            out = {}
            for cell_index in order:
                cell = sim.pool_config.cells[cell_index]
                for load in loads[cell_index]:
                    dag = builder.build(load, cell, 0.0, 2000.0,
                                        cell_index=cell_index)
                    out[(cell_index, load.uplink)] = [
                        t.stoch_mult for t in dag.tasks]
            return out

        assert build_all([0, 1]) == build_all([1, 0])

    def test_presampled_fields_populated(self):
        sim = build_simulation(
            Scenario(pool=small_pool(), policy="concordia-noml", seed=3))
        cell = sim.pool_config.cells[0]
        load = sim._loads_for_slot(0, 0)[0]
        dag = sim.builder.build(load, cell, 0.0, 2000.0, cell_index=0)
        assert all(t.stoch_mult is not None for t in dag.tasks)
        assert all(t.cache_u is not None for t in dag.tasks)
        assert all(t.cache_tail >= 1.0 for t in dag.tasks)


class TestResultSchema:
    def test_to_dict_emits_schema_2(self):
        result = build_simulation(
            Scenario(pool=small_pool(), policy="concordia-noml",
                     seed=1)).run(20)
        payload = result.to_dict()
        assert payload["schema"] == 2
        assert payload["scenario"]["seed"] == 1

    def test_schema_2_round_trip(self):
        result = build_simulation(
            Scenario(pool=small_pool(), policy="concordia-noml",
                     seed=1)).run(20)
        clone = SimulationResult.from_dict(result.to_dict())
        assert clone.latency.p99999_us == result.latency.p99999_us
        assert clone.scenario == result.scenario
        assert clone.metrics is None and clone.pool is None

    def test_schema_1_payload_still_loads(self):
        result = build_simulation(
            Scenario(pool=small_pool(), policy="concordia-noml",
                     seed=1)).run(20)
        payload = result.to_dict()
        payload["schema"] = 1
        del payload["scenario"]
        clone = SimulationResult.from_dict(payload)
        assert clone.scenario is None
        assert clone.num_slots == result.num_slots

    def test_unknown_schema_raises(self):
        result = build_simulation(
            Scenario(pool=small_pool(), policy="concordia-noml",
                     seed=1)).run(20)
        payload = result.to_dict()
        payload["schema"] = max(RESULT_SCHEMAS) + 1
        with pytest.raises(ValueError, match="result schema"):
            SimulationResult.from_dict(payload)


class TestCacheSchemaBump:
    def test_stale_result_schema_is_a_miss_not_a_crash(self, tmp_path):
        from repro.exec.cache import ResultCache, activated_cache
        from repro.exec.fingerprint import model_fingerprint
        from repro.exec.spec import spec_key
        from repro.experiments.common import make_spec, run_simulation

        config = small_pool()
        cache = ResultCache(tmp_path / "cache")
        with activated_cache(cache):
            first = run_simulation(config, "concordia-noml", num_slots=20,
                                   seed=3)
            spec = make_spec(config, "concordia-noml", num_slots=20, seed=3)
            key = spec_key(spec, model_fingerprint())
            artifact = cache.get(key)
            assert artifact is not None
            # Simulate an artifact written by a future result schema.
            artifact["result"]["schema"] = max(RESULT_SCHEMAS) + 1
            cache.put(key, artifact)
            again = run_simulation(config, "concordia-noml", num_slots=20,
                                   seed=3)
        assert again.latency.p99_us == first.latency.p99_us
        # The re-executed artifact replaced the stale one.
        refreshed = cache.get(key)
        assert refreshed["result"]["schema"] in RESULT_SCHEMAS

    def test_batch_treats_stale_result_schema_as_miss(self, tmp_path):
        from repro.exec.batch import run_batch
        from repro.exec.cache import ResultCache
        from repro.exec.fingerprint import model_fingerprint
        from repro.exec.spec import spec_key
        from repro.experiments.common import make_spec

        config = small_pool()
        spec = make_spec(config, "concordia-noml", num_slots=20, seed=3)
        cache = ResultCache(tmp_path / "cache")
        report = run_batch([spec], cache=cache)
        assert report.executed == 1
        key = spec_key(spec, model_fingerprint())
        artifact = cache.get(key)
        artifact["result"]["schema"] = max(RESULT_SCHEMAS) + 1
        cache.put(key, artifact)
        report2 = run_batch([spec], cache=cache)
        assert report2.executed == 1 and report2.cached == 0
        assert report2.results(strict=True)[0].num_slots == 20

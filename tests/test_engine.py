"""Unit and property tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine, SimulationError, _DONE


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Engine().now == 0.0

    def test_schedule_at_runs_callback_at_time(self):
        eng = Engine()
        seen = []
        eng.schedule_at(5.0, lambda: seen.append(eng.now))
        eng.run_until(10.0)
        assert seen == [5.0]

    def test_schedule_after_is_relative(self):
        eng = Engine()
        seen = []
        eng.schedule_at(4.0, lambda: eng.schedule_after(3.0,
                                                        lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [7.0]

    def test_schedule_in_past_raises(self):
        eng = Engine()
        eng.schedule_at(5.0, lambda: None)
        eng.run_until(6.0)
        with pytest.raises(SimulationError):
            eng.schedule_at(5.5, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Engine().schedule_after(-1.0, lambda: None)

    def test_same_time_events_fifo(self):
        eng = Engine()
        seen = []
        for tag in range(5):
            eng.schedule_at(1.0, lambda tag=tag: seen.append(tag))
        eng.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_run_until_processes_boundary_events(self):
        eng = Engine()
        seen = []
        eng.schedule_at(10.0, lambda: seen.append("boundary"))
        eng.run_until(10.0)
        assert seen == ["boundary"]

    def test_run_until_advances_clock_past_empty_heap(self):
        eng = Engine()
        eng.run_until(123.0)
        assert eng.now == 123.0

    def test_events_after_horizon_not_run(self):
        eng = Engine()
        seen = []
        eng.schedule_at(10.0, lambda: seen.append(1))
        eng.schedule_at(20.0, lambda: seen.append(2))
        eng.run_until(15.0)
        assert seen == [1]
        assert eng.pending_count() == 1


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        eng = Engine()
        seen = []
        event = eng.schedule_at(1.0, lambda: seen.append("a"))
        event.cancel()
        eng.run()
        assert seen == []
        assert event.cancelled

    def test_peek_time_skips_cancelled(self):
        eng = Engine()
        first = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        first.cancel()
        assert eng.peek_time() == 2.0

    def test_pending_count_excludes_cancelled(self):
        eng = Engine()
        event = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        event.cancel()
        assert eng.pending_count() == 1


class TestStep:
    def test_step_returns_false_on_empty(self):
        assert Engine().step() is False

    def test_step_processes_one_event(self):
        eng = Engine()
        seen = []
        eng.schedule_at(1.0, lambda: seen.append(1))
        eng.schedule_at(2.0, lambda: seen.append(2))
        assert eng.step() is True
        assert seen == [1]

    def test_events_processed_counter(self):
        eng = Engine()
        for t in (1.0, 2.0, 3.0):
            eng.schedule_at(t, lambda: None)
        eng.run()
        assert eng.events_processed == 3


@given(st.lists(st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
                min_size=1, max_size=50))
@settings(max_examples=100)
def test_events_fire_in_chronological_order(times):
    eng = Engine()
    fired = []
    for t in times:
        eng.schedule_at(t, lambda t=t: fired.append(t))
    eng.run()
    assert fired == sorted(times)
    assert eng.now == max(times)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e6,
                                    allow_nan=False),
                          st.booleans()),
                min_size=1, max_size=40))
@settings(max_examples=100)
def test_cancellation_property(entries):
    eng = Engine()
    fired = []
    expected = []
    for t, keep in entries:
        event = eng.schedule_at(t, lambda t=t: fired.append(t))
        if keep:
            expected.append(t)
        else:
            event.cancel()
    eng.run()
    assert sorted(fired) == sorted(expected)


class TestScheduleEvery:
    def test_fires_at_fixed_rate(self):
        eng = Engine()
        fired = []
        eng.schedule_every(10.0, lambda: fired.append(eng.now))
        eng.run_until(45.0)
        assert fired == [10.0, 20.0, 30.0, 40.0]

    def test_explicit_start(self):
        eng = Engine()
        fired = []
        eng.schedule_every(10.0, lambda: fired.append(eng.now), start=0.0)
        eng.run_until(25.0)
        assert fired == [0.0, 10.0, 20.0]

    def test_non_positive_period_raises(self):
        with pytest.raises(SimulationError):
            Engine().schedule_every(0.0, lambda: None)
        with pytest.raises(SimulationError):
            Engine().schedule_every(-5.0, lambda: None)

    def test_start_in_past_raises(self):
        eng = Engine()
        eng.schedule_at(10.0, lambda: None)
        eng.run_until(10.0)
        with pytest.raises(SimulationError):
            eng.schedule_every(5.0, lambda: None, start=1.0)

    def test_cancel_stops_future_firings(self):
        eng = Engine()
        fired = []
        event = eng.schedule_every(10.0, lambda: fired.append(eng.now))
        eng.run_until(25.0)
        event.cancel()
        eng.run_until(100.0)
        assert fired == [10.0, 20.0]
        assert eng.pending_count() == 0

    def test_callback_can_cancel_own_timer(self):
        eng = Engine()
        fired = []
        holder = {}

        def tick():
            fired.append(eng.now)
            if len(fired) == 3:
                holder["event"].cancel()

        holder["event"] = eng.schedule_every(10.0, tick)
        eng.run_until(200.0)
        assert fired == [10.0, 20.0, 30.0]
        assert eng.pending_count() == 0

    def test_single_heap_entry_reused(self):
        eng = Engine()
        eng.schedule_every(10.0, lambda: None)
        eng.run_until(95.0)
        assert eng.pending_count() == 1
        assert len(eng._heap) == 1


class TestPendingCountAccounting:
    def test_counts_live_events_only(self):
        eng = Engine()
        events = [eng.schedule_at(float(t), lambda: None)
                  for t in range(1, 6)]
        assert eng.pending_count() == 5
        events[0].cancel()
        events[3].cancel()
        assert eng.pending_count() == 3

    def test_cancel_then_pop_is_counted_once(self):
        # Cancelling marks the heap entry dead but leaves it queued;
        # popping the dead entry later must not decrement again.
        eng = Engine()
        event = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        event.cancel()
        assert eng.pending_count() == 1
        eng.run()  # pops the cancelled entry and the live one
        assert eng.pending_count() == 0

    def test_cancel_after_fire_is_noop(self):
        eng = Engine()
        event = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        eng.step()  # fires the first event
        event.cancel()  # late cancel of an already-fired event
        assert eng.pending_count() == 1

    def test_double_cancel_decrements_once(self):
        eng = Engine()
        event = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert eng.pending_count() == 1

    def test_matches_brute_force_over_mixed_workload(self):
        eng = Engine()
        fired = []
        periodic = eng.schedule_every(7.0, lambda: fired.append(eng.now))
        one_shots = [eng.schedule_at(float(t), lambda: None)
                     for t in range(1, 20, 3)]
        one_shots[2].cancel()
        eng.run_until(10.0)
        live = [e for e in eng._heap if e[2] is not None
                and e[2] is not _DONE]
        assert eng.pending_count() == len(live)
        periodic.cancel()
        eng.run_until(30.0)
        assert eng.pending_count() == sum(
            1 for e in eng._heap if e[2] is not None and e[2] is not _DONE)


class TestReusableTimer:
    def test_fires_once_at_deadline(self):
        eng = Engine()
        fired = []
        timer = eng.timer(lambda: fired.append(eng.now))
        timer.arm(5.0)
        eng.run_until(20.0)
        assert fired == [5.0]

    def test_rearm_reuses_single_heap_entry(self):
        eng = Engine()
        count = [0]
        timer = eng.timer(lambda: count.__setitem__(0, count[0] + 1))
        for _ in range(50):
            timer.arm(1.0)
            eng.run_until(eng.now + 1.0)
        assert count[0] == 50
        assert len(eng._heap) == 0
        assert eng.pending_count() == 0

    def test_callback_can_rearm_from_inside(self):
        # The engine detaches the entry before the callback runs, so
        # the callback may re-arm the same timer (the worker
        # finish-timer pattern).
        eng = Engine()
        fired = []

        def cb():
            fired.append(eng.now)
            if len(fired) < 3:
                timer.arm(2.0)

        timer = eng.timer(cb)
        timer.arm(2.0)
        eng.run_until(100.0)
        assert fired == [2.0, 4.0, 6.0]
        assert len(eng._heap) == 0  # the reused entry left no orphans

    def test_double_arm_raises(self):
        eng = Engine()
        timer = eng.timer(lambda: None)
        timer.arm(1.0)
        with pytest.raises(SimulationError):
            timer.arm(2.0)

    def test_negative_delay_raises(self):
        eng = Engine()
        timer = eng.timer(lambda: None)
        with pytest.raises(SimulationError):
            timer.arm(-0.1)

    def test_cancel_prevents_firing(self):
        eng = Engine()
        fired = []
        timer = eng.timer(lambda: fired.append(eng.now))
        timer.arm(3.0)
        timer.cancel()
        eng.run_until(10.0)
        assert fired == []
        assert eng.pending_count() == 0

    def test_rearm_after_cancel_orphans_stale_entry(self):
        # cancel() leaves the dead entry queued (lazy deletion); a
        # re-arm must orphan it and still fire exactly once.
        eng = Engine()
        fired = []
        timer = eng.timer(lambda: fired.append(eng.now))
        timer.arm(3.0)
        timer.cancel()
        timer.arm(7.0)
        assert len(eng._heap) == 2  # orphaned dead entry + live entry
        eng.run_until(10.0)
        assert fired == [7.0]
        assert eng.pending_count() == 0

    def test_armed_property_tracks_lifecycle(self):
        eng = Engine()
        timer = eng.timer(lambda: None)
        assert not timer.armed
        timer.arm(1.0)
        assert timer.armed and timer.time == 1.0
        eng.run_until(2.0)
        assert not timer.armed
        timer.arm(1.0)
        timer.cancel()
        assert not timer.armed

    def test_fifo_order_against_one_shots(self):
        # A timer armed before a same-deadline one-shot fires first,
        # and vice versa: each arm() consumes one engine seq exactly
        # like the schedule_after it replaces (determinism-critical).
        eng = Engine()
        order = []
        timer = eng.timer(lambda: order.append("timer"))
        timer.arm(5.0)
        eng.schedule_after(5.0, lambda: order.append("one-shot"))
        eng.run_until(5.0)
        assert order == ["timer", "one-shot"]
        order.clear()
        eng.schedule_after(3.0, lambda: order.append("one-shot"))
        timer.arm(3.0)
        eng.run_until(10.0)
        assert order == ["one-shot", "timer"]

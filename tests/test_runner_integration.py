"""Integration tests: full simulations through the public API.

These run small but complete experiments (hundreds to thousands of
slots), exercising traffic generation, DAG construction, scheduling,
OS/cache models and metrics together.
"""

import pytest

from repro import (
    ConcordiaScheduler,
    DedicatedScheduler,
    FlexRanScheduler,
    PoolConfig,
    ShenangoScheduler,
    Simulation,
    UtilizationScheduler,
    cell_20mhz_fdd,
    pool_100mhz_2cells,
    pool_20mhz_7cells,
    train_predictor,
)


@pytest.fixture(scope="module")
def small_pool():
    return PoolConfig(cells=(cell_20mhz_fdd("c0"), cell_20mhz_fdd("c1")),
                      num_cores=4, deadline_us=2000.0)


@pytest.fixture(scope="module")
def predictor(small_pool):
    return train_predictor(small_pool, num_slots=300, seed=100)


class TestBasicRuns:
    def test_flexran_isolated_run(self, small_pool):
        sim = Simulation(small_pool, FlexRanScheduler(), workload="none",
                         load_fraction=0.3, seed=1)
        result = sim.run(400)
        assert result.latency.count >= 400  # >= 1 DAG per slot
        assert result.latency.miss_fraction < 0.01
        assert 0.0 <= result.reclaimed_fraction <= 1.0
        assert result.duration_us >= 400 * 1000.0

    def test_concordia_run_with_predictor(self, small_pool, predictor):
        sim = Simulation(small_pool, ConcordiaScheduler(predictor),
                         workload="redis", load_fraction=0.3, seed=1)
        result = sim.run(400)
        assert result.latency.miss_fraction < 0.01
        assert result.reclaimed_fraction > 0.2
        assert result.workload_rates_per_s["redis-get"] > 0

    def test_dedicated_reclaims_nothing(self, small_pool):
        sim = Simulation(small_pool, DedicatedScheduler(), workload="none",
                         load_fraction=0.3, seed=2)
        result = sim.run(200)
        assert result.reclaimed_fraction == pytest.approx(0.0, abs=1e-6)

    def test_shenango_and_utilization_run(self, small_pool):
        for policy in (ShenangoScheduler(queue_delay_threshold_us=20.0),
                       UtilizationScheduler(slot_duration_us=1000.0)):
            sim = Simulation(small_pool, policy, workload="nginx",
                             load_fraction=0.3, seed=3)
            result = sim.run(300)
            assert result.latency.count > 0

    def test_invalid_slots(self, small_pool):
        sim = Simulation(small_pool, FlexRanScheduler())
        with pytest.raises(ValueError):
            sim.run(0)


class TestDeterminism:
    def test_same_seed_same_result(self, small_pool):
        def run():
            sim = Simulation(small_pool, FlexRanScheduler(),
                             workload="redis", load_fraction=0.4, seed=9)
            return sim.run(200)

        a, b = run(), run()
        assert a.latency.mean_us == b.latency.mean_us
        assert a.scheduling_events == b.scheduling_events
        assert a.reclaimed_fraction == b.reclaimed_fraction

    def test_different_seeds_differ(self, small_pool):
        results = []
        for seed in (1, 2):
            sim = Simulation(small_pool, FlexRanScheduler(),
                             workload="none", load_fraction=0.4, seed=seed)
            results.append(sim.run(200).latency.mean_us)
        assert results[0] != results[1]


class TestWorkloadInteraction:
    def test_collocation_reduces_reclaim_or_inflates_runtimes(self,
                                                              small_pool):
        def mean_latency(workload):
            sim = Simulation(small_pool, FlexRanScheduler(),
                             workload=workload, load_fraction=0.4, seed=5)
            return sim.run(500).latency.mean_us

        isolated = mean_latency("none")
        interfered = mean_latency("mlperf")
        assert interfered > isolated

    def test_workload_throughput_tracks_reclaimed_cores(self, small_pool):
        def redis_rate(load):
            sim = Simulation(small_pool, FlexRanScheduler(),
                             workload="redis", load_fraction=load, seed=6)
            return sim.run(300).workload_rates_per_s["redis-get"]

        assert redis_rate(0.05) > redis_rate(0.9)

    def test_mix_workload_toggles(self, small_pool):
        sim = Simulation(small_pool, FlexRanScheduler(), workload="mix",
                         load_fraction=0.3, seed=7,
                         mix_interval_us=(20_000.0, 50_000.0))
        result = sim.run(400)
        assert set(result.workload_ops) == {"nginx", "redis-get", "tpcc"}


class TestSlotAccounting:
    def test_tdd_slots_produce_expected_dag_mix(self):
        config = pool_100mhz_2cells(num_cores=4)
        sim = Simulation(config, DedicatedScheduler(), workload="none",
                         load_fraction=0.5, seed=8)
        result = sim.run(100)
        # 2 cells x 100 slots; DDDSU means D slots carry 1 DAG/cell, S
        # carries 2 (UL+DL), U carries 1: per 5 slots = 6 DAGs/cell.
        expected = 2 * 100 // 5 * 6
        assert result.latency.count == expected

    def test_fdd_slots_produce_two_dags_per_cell(self, small_pool):
        sim = Simulation(small_pool, DedicatedScheduler(), workload="none",
                         load_fraction=0.5, seed=8)
        result = sim.run(100)
        assert result.latency.count == 2 * 2 * 100

    def test_five_nines_summary_flags(self, small_pool, predictor):
        sim = Simulation(small_pool, ConcordiaScheduler(predictor),
                         workload="none", load_fraction=0.2, seed=10)
        result = sim.run(300)
        assert result.meets_five_nines == \
            (result.latency.p99999_us <= result.latency.deadline_us)

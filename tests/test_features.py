"""Tests for feature selection (distance correlation, backwards elimination)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import (
    backwards_elimination,
    distance_correlation,
    rank_by_distance_correlation,
    select_features,
)


class TestDistanceCorrelation:
    def test_perfect_linear_dependence(self):
        x = np.linspace(0, 1, 200)
        assert distance_correlation(x, 3 * x + 1) == pytest.approx(1.0, abs=1e-6)

    def test_detects_nonlinear_dependence(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, 400)
        y = x**2  # Pearson correlation would be ~0 here
        assert distance_correlation(x, y) > 0.4

    def test_independent_variables_near_zero(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=800)
        y = rng.normal(size=800)
        assert distance_correlation(x, y) < 0.15

    def test_constant_input_gives_zero(self):
        x = np.ones(100)
        y = np.arange(100.0)
        assert distance_correlation(x, y) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            distance_correlation(np.ones(3), np.ones(4))

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            distance_correlation(np.ones(1), np.ones(1))

    def test_subsampling_path(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(size=5000)
        y = 2 * x + rng.normal(0, 0.01, 5000)
        value = distance_correlation(x, y, max_samples=500,
                                     rng=np.random.default_rng(0))
        assert value > 0.95

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_bounded_and_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=120)
        y = rng.normal(size=120) + 0.3 * x
        forward = distance_correlation(x, y)
        backward = distance_correlation(y, x)
        assert 0.0 <= forward <= 1.0 + 1e-9
        assert forward == pytest.approx(backward, abs=1e-9)


class TestRanking:
    def test_relevant_features_rank_first(self):
        rng = np.random.default_rng(3)
        n = 600
        X = rng.uniform(size=(n, 5))
        y = 10 * X[:, 2] + 3 * X[:, 4] + rng.normal(0, 0.05, n)
        top = rank_by_distance_correlation(X, y, top_n=2)
        assert set(top) == {2, 4}


class TestBackwardsElimination:
    def test_drops_noise_features(self):
        rng = np.random.default_rng(4)
        n = 800
        X = rng.uniform(size=(n, 4))
        y = 5 * X[:, 0] + 2 * X[:, 1] + rng.normal(0, 0.05, n)
        kept = backwards_elimination(X, y, candidates=[0, 1, 2, 3], keep_m=2)
        assert set(kept) == {0, 1}

    def test_keep_m_validation(self):
        with pytest.raises(ValueError):
            backwards_elimination(np.ones((10, 2)), np.ones(10), [0, 1], 0)

    def test_noop_when_already_small(self):
        X = np.random.default_rng(5).uniform(size=(100, 3))
        y = X[:, 0]
        assert backwards_elimination(X, y, [0], keep_m=2) == [0]


class TestSelectFeatures:
    def test_handpicked_always_included(self):
        rng = np.random.default_rng(6)
        n = 500
        X = rng.uniform(size=(n, 6))
        y = 4 * X[:, 1] + rng.normal(0, 0.05, n)
        selected = select_features(X, y, handpicked=(5,), top_n=3, keep_m=2)
        assert 5 in selected
        assert 1 in selected

    def test_result_sorted_and_unique(self):
        rng = np.random.default_rng(7)
        X = rng.uniform(size=(300, 4))
        y = X[:, 0] + X[:, 1]
        selected = select_features(X, y, handpicked=(0,), top_n=3, keep_m=3)
        assert selected == sorted(set(selected))

"""Tests for the per-leaf EVT predictor variant."""

import numpy as np
import pytest

from repro.core.leaf_evt import LeafEvtQuantileTree
from repro.core.models import QuantileTreeWCET


def _dataset(n=2500, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 10, size=(n, 3))
    y = 20.0 * X[:, 0] + rng.gumbel(0.0, 3.0, n)
    return X, y


class TestLeafEvt:
    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            LeafEvtQuantileTree(confidence=0.0)

    def test_prediction_covers_samples(self):
        X, y = _dataset()
        model = LeafEvtQuantileTree(confidence=0.999).fit(X, y)
        predictions = np.array([model.predict(x) for x in X[:600]])
        assert (predictions >= y[:600]).mean() > 0.99

    def test_never_below_observed_max(self):
        X, y = _dataset(seed=1)
        model = LeafEvtQuantileTree(confidence=0.9).fit(X, y)
        x = X[0]
        leaf = model.tree.leaf_index(x)
        assert model.predict(x) >= model.tree.leaves[leaf].max()

    def test_higher_confidence_more_pessimistic(self):
        X, y = _dataset(seed=2)
        low = LeafEvtQuantileTree(confidence=0.99).fit(X, y)
        high = LeafEvtQuantileTree(confidence=0.999999).fit(X, y)
        probe = X[:100]
        assert np.mean([high.predict(x) for x in probe]) >= \
            np.mean([low.predict(x) for x in probe])

    def test_online_refit_tracks_shift(self):
        X, y = _dataset(seed=3)
        model = LeafEvtQuantileTree(refit_every=50).fit(X, y)
        x = X[0]
        before = model.predict(x)
        for __ in range(200):
            model.observe(x, before * 1.5)
        assert model.predict(x) >= before * 1.4

    def test_more_expensive_than_max_rule(self):
        """The paper's conclusion: similar accuracy, more compute."""
        X, y = _dataset(seed=4)
        evt = LeafEvtQuantileTree(refit_every=25).fit(X, y)
        baseline = QuantileTreeWCET().fit(X, y)
        fits_before = evt.fits_performed
        probe = X[0]
        for runtime in y[:100]:
            evt.observe(probe, runtime)
            baseline.observe(probe, runtime)
        # The EVT variant keeps performing distribution fits online;
        # the max rule never does any.
        assert evt.fits_performed > fits_before

    def test_accuracy_comparable_to_max_rule(self):
        X, y = _dataset(seed=5)
        split = int(0.8 * len(y))
        evt = LeafEvtQuantileTree().fit(X[:split], y[:split])
        baseline = QuantileTreeWCET().fit(X[:split], y[:split])
        test_x, test_y = X[split:], y[split:]
        evt_miss = np.mean([evt.predict(x) < t
                            for x, t in zip(test_x, test_y)])
        base_miss = np.mean([baseline.predict(x) < t
                             for x, t in zip(test_x, test_y)])
        assert abs(evt_miss - base_miss) < 0.05

"""Tests for the Fig. 1 / Fig. 16 DAG-structure driver."""

import networkx as nx

from repro.experiments.dag_structure import (
    build_example_dags,
    main,
    render_dag,
    to_networkx,
)
from repro.ran.tasks import TaskType


class TestStructure:
    def test_graphs_are_dags(self):
        dags = build_example_dags()
        for dag in dags.values():
            graph = to_networkx(dag)
            assert nx.is_directed_acyclic_graph(graph)
            assert graph.number_of_nodes() == len(dag.tasks)

    def test_uplink_source_and_sink(self):
        dag = build_example_dags()["uplink"]
        graph = to_networkx(dag)
        sources = [n for n in graph if graph.in_degree(n) == 0]
        sinks = [n for n in graph if graph.out_degree(n) == 0]
        types = nx.get_node_attributes(graph, "task_type")
        assert [types[s] for s in sources] == ["fft"]
        assert [types[s] for s in sinks] == ["crc_check"]

    def test_downlink_sink_is_ifft(self):
        dag = build_example_dags()["downlink"]
        graph = to_networkx(dag)
        sinks = [n for n in graph if graph.out_degree(n) == 0]
        types = nx.get_node_attributes(graph, "task_type")
        assert [types[s] for s in sinks] == ["ifft"]

    def test_longest_path_passes_through_decode(self):
        dag = build_example_dags()["uplink"]
        graph = to_networkx(dag)
        types = nx.get_node_attributes(graph, "task_type")
        path_types = [types[n] for n in nx.dag_longest_path(graph)]
        assert "ldpc_decode" in path_types


class TestRendering:
    def test_render_marks_longest_chain(self):
        dags = build_example_dags()
        text = render_dag(dags["uplink"], "UL")
        assert text.startswith("UL")
        assert "*" in text
        assert "ldpc_decode" in text

    def test_main_renders_both_figures(self):
        text = main()
        assert "Figure 1" in text
        assert "Figure 16" in text
        assert "precoding" in text

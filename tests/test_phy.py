"""Tests for the reference PHY kernels (Appendix A.1 substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.channel import AwgnChannel, RayleighChannel, ls_channel_estimate
from repro.phy.crc import crc16, crc24, crc_append, crc_check
from repro.phy.equalizer import mmse_equalize, zf_equalize, zf_precoder
from repro.phy.ldpc import LdpcCode, decode_bit_flip, encode
from repro.phy.modulation import (
    demodulate_hard,
    modulate,
    qam_constellation,
)
from repro.phy.validate import (
    ber_vs_modulation,
    equalizer_mse,
    ldpc_iterations_vs_snr,
)


class TestCrc:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        for width in (16, 24):
            bits = rng.integers(0, 2, 200).astype(np.uint8)
            framed = crc_append(bits, width)
            assert len(framed) == 200 + width
            assert crc_check(framed, width)

    def test_detects_single_bit_errors(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 100).astype(np.uint8)
        framed = crc_append(bits)
        for position in range(0, len(framed), 7):
            corrupted = framed.copy()
            corrupted[position] ^= 1
            assert not crc_check(corrupted)

    def test_detects_burst_errors(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 300).astype(np.uint8)
        framed = crc_append(bits)
        corrupted = framed.copy()
        corrupted[40:60] ^= 1
        assert not crc_check(corrupted)

    def test_deterministic(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        assert crc24(bits) == crc24(bits)
        assert crc16(bits) == crc16(bits)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            crc_check(np.zeros(10, dtype=np.uint8), width=24)

    def test_unsupported_width(self):
        with pytest.raises(ValueError):
            crc_append(np.zeros(8, dtype=np.uint8), width=12)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, bits):
        framed = crc_append(np.array(bits, dtype=np.uint8))
        assert crc_check(framed)


class TestLdpc:
    def test_code_construction(self):
        code = LdpcCode(n=96, rate=0.5)
        assert code.k == 48
        assert code.parity_check_matrix.shape == (48, 96)
        assert code.rate == pytest.approx(0.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LdpcCode(n=96, rate=0.99)
        with pytest.raises(ValueError):
            LdpcCode(n=4)

    def test_encoding_satisfies_parity(self):
        code = LdpcCode(n=64, rate=0.5, seed=3)
        rng = np.random.default_rng(4)
        for __ in range(20):
            message = rng.integers(0, 2, code.k).astype(np.uint8)
            codeword = encode(code, message)
            assert not code.syndrome(codeword).any()
            assert np.array_equal(codeword[: code.k], message)

    def test_wrong_message_length(self):
        code = LdpcCode(n=64)
        with pytest.raises(ValueError):
            encode(code, np.zeros(5, dtype=np.uint8))

    def test_clean_codeword_decodes_instantly(self):
        code = LdpcCode(n=96, seed=5)
        message = np.random.default_rng(6).integers(0, 2, code.k)
        codeword = encode(code, message.astype(np.uint8))
        result = decode_bit_flip(code, codeword)
        assert result.success
        assert result.iterations == 0

    def test_corrects_few_errors(self):
        code = LdpcCode(n=96, seed=7)
        rng = np.random.default_rng(8)
        corrected = 0
        for __ in range(30):
            message = rng.integers(0, 2, code.k).astype(np.uint8)
            codeword = encode(code, message)
            noisy = codeword.copy()
            noisy[rng.integers(code.n)] ^= 1  # single error
            result = decode_bit_flip(code, noisy)
            if result.success and np.array_equal(result.bits[: code.k],
                                                 message):
                corrected += 1
        assert corrected >= 25

    def test_iterations_grow_with_errors(self):
        code = LdpcCode(n=96, seed=9)
        rng = np.random.default_rng(10)
        def mean_iterations(num_errors, trials=30):
            totals = []
            for __ in range(trials):
                message = rng.integers(0, 2, code.k).astype(np.uint8)
                codeword = encode(code, message)
                noisy = codeword.copy()
                flip = rng.choice(code.n, num_errors, replace=False)
                noisy[flip] ^= 1
                totals.append(decode_bit_flip(code, noisy).iterations)
            return np.mean(totals)

        assert mean_iterations(6) > mean_iterations(1)


class TestModulation:
    @pytest.mark.parametrize("order", [2, 4, 6, 8])
    def test_unit_energy(self, order):
        points = qam_constellation(order)
        assert len(points) == 2**order
        assert np.mean(np.abs(points) ** 2) == pytest.approx(1.0)

    @pytest.mark.parametrize("order", [2, 4, 6, 8])
    def test_noiseless_roundtrip(self, order):
        rng = np.random.default_rng(order)
        bits = rng.integers(0, 2, 240).astype(np.uint8)
        assert np.array_equal(
            demodulate_hard(modulate(bits, order), order)[:240], bits)

    def test_odd_order_rejected(self):
        with pytest.raises(ValueError):
            qam_constellation(3)

    def test_gray_mapping_single_bit_neighbors(self):
        """Adjacent constellation points differ in exactly one bit."""
        points = qam_constellation(4)
        # Find the nearest neighbor of each point; Gray mapping means
        # the labels differ by one bit.
        for index, point in enumerate(points):
            distances = np.abs(points - point)
            distances[index] = np.inf
            neighbor = int(distances.argmin())
            assert bin(index ^ neighbor).count("1") == 1

    def test_higher_order_higher_ber(self):
        results = ber_vs_modulation(snr_db=12.0)
        assert results[2] <= results[4] <= results[6] <= results[8]
        assert results[2] < 0.01
        assert results[8] > results[2]


class TestChannel:
    def test_awgn_snr_matches(self):
        channel = AwgnChannel(10.0, rng=np.random.default_rng(0))
        symbols = np.ones(50_000, dtype=np.complex128)
        received = channel(symbols)
        noise_power = np.mean(np.abs(received - symbols) ** 2)
        assert noise_power == pytest.approx(0.1, rel=0.05)

    def test_rayleigh_shape_checks(self):
        with pytest.raises(ValueError):
            RayleighChannel(num_rx=1, num_tx=2, snr_db=10.0)

    def test_ls_estimate_recovers_channel(self):
        rng = np.random.default_rng(1)
        channel = RayleighChannel(4, 2, snr_db=30.0,
                                  rng=np.random.default_rng(2))
        pilots = (rng.choice([-1, 1], (2, 64))
                  + 1j * rng.choice([-1, 1], (2, 64))) / np.sqrt(2)
        received = channel.transmit(pilots)
        estimate = ls_channel_estimate(received, pilots)
        error = np.linalg.norm(estimate - channel.h) / \
            np.linalg.norm(channel.h)
        assert error < 0.1

    def test_ls_estimate_validation(self):
        with pytest.raises(ValueError):
            ls_channel_estimate(np.ones((2, 4)), np.ones((2, 5)))
        with pytest.raises(ValueError):
            ls_channel_estimate(np.ones((2, 1)), np.ones((2, 1)))


class TestEqualizers:
    def test_zf_inverts_clean_channel(self):
        rng = np.random.default_rng(3)
        channel = RayleighChannel(4, 2, snr_db=100.0,
                                  rng=np.random.default_rng(4))
        sent = rng.normal(size=(2, 30)) + 1j * rng.normal(size=(2, 30))
        received = channel.transmit(sent)
        recovered = zf_equalize(channel.h, received)
        assert np.allclose(recovered, sent, atol=1e-3)

    def test_mmse_beats_zf_at_low_snr(self):
        results = equalizer_mse(snr_db=0.0, seed=5)
        assert results["mmse_mse"] <= results["zf_mse"]

    def test_mmse_converges_to_zf_at_high_snr(self):
        results = equalizer_mse(snr_db=40.0, seed=6)
        assert results["mmse_mse"] == pytest.approx(results["zf_mse"],
                                                    rel=0.05)

    def test_mmse_validation(self):
        with pytest.raises(ValueError):
            mmse_equalize(np.eye(2), np.ones((2, 3)), -1.0)

    def test_zf_precoder_cancels_interference(self):
        channel = RayleighChannel(4, 4, snr_db=100.0,
                                  rng=np.random.default_rng(7))
        h_down = channel.h[:2, :]  # 2 users, 4 tx antennas
        w = zf_precoder(h_down)
        effective = h_down @ w
        off_diagonal = effective - np.diag(np.diag(effective))
        assert np.max(np.abs(off_diagonal)) < 1e-9


class TestValidation:
    def test_ldpc_iterations_rise_as_snr_falls(self):
        """The §4.1 non-linearity: decode effort vs link margin."""
        results = ldpc_iterations_vs_snr(snrs_db=(2.0, 5.0, 8.0),
                                         trials=30)
        assert results[2.0]["mean_iterations"] > \
            results[8.0]["mean_iterations"]
        assert results[8.0]["success_rate"] >= results[2.0]["success_rate"]
        assert results[8.0]["success_rate"] > 0.9

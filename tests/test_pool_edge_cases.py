"""Edge-case and invariant tests for the pool and accelerator paths."""

import numpy as np

from repro.ran.config import PoolConfig, cell_20mhz_fdd
from repro.sim.engine import Engine
from repro.sim.pool import VranPool, WorkerState

from .test_pool import ManualPolicy, _FixedCost, _fast_os, make_dag, make_pool


class TestPinnedWakeups:
    def _pin_pool(self, num_cores=2):
        engine = Engine()
        config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=num_cores,
                            deadline_us=4000.0)
        policy = ManualPolicy()
        policy.pin_tasks_to_wakeups = True
        pool = VranPool(
            engine=engine, config=config, policy=policy,
            cost_model=_FixedCost(noise_sigma=0.0, isolated_tail_prob=0.0),
            os_model=_fast_os(),
        )
        return engine, pool

    def test_pin_when_no_spinning_worker(self):
        engine, pool = self._pin_pool()
        pool.request_cores(0)
        dag = make_dag(total_bytes=0)  # single FFT task
        pool.release_slot([dag])
        assert pool.pinned_count == 1
        assert pool.ready_count == 0
        engine.run_until(10_000.0)
        assert dag.finished
        assert pool.pinned_count == 0

    def test_no_pin_when_spinning_worker_free(self):
        engine, pool = self._pin_pool()
        dag = make_dag(total_bytes=0)
        pool.release_slot([dag])
        assert pool.pinned_count == 0  # a spinning worker took it

    def test_pinned_task_waits_for_its_worker(self):
        """The queue-affinity failure mode: the task eats the full
        wakeup latency even though no other work exists."""
        from repro.sim.osmodel import LatencyBucket, WakeupLatencyModel
        slow = WakeupLatencyModel(
            rng=np.random.default_rng(0),
            isolated_buckets=(LatencyBucket(1.0, 900.0, 900.0001),),
            collocated_buckets=(LatencyBucket(1.0, 900.0, 900.0001),),
        )
        engine = Engine()
        config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=2,
                            deadline_us=4000.0)
        policy = ManualPolicy()
        policy.pin_tasks_to_wakeups = True
        pool = VranPool(engine=engine, config=config, policy=policy,
                        cost_model=_FixedCost(noise_sigma=0.0,
                                              isolated_tail_prob=0.0),
                        os_model=slow)
        pool.request_cores(0)
        dag = make_dag(total_bytes=0)
        pool.release_slot([dag])
        engine.run_until(10_000.0)
        task = dag.tasks[0]
        assert task.start_time >= 900.0

    def test_unpinned_policies_share_queue(self):
        engine, pool = make_pool(num_cores=2)
        pool.request_cores(0)
        dag = make_dag(total_bytes=0)
        pool.release_slot([dag])
        assert pool.pinned_count == 0
        assert pool.ready_count == 1


class TestDrainAndCounters:
    def test_counters_match_scan_after_run(self):
        engine, pool = make_pool(num_cores=4)
        for i in range(10):
            release = i * 400.0
            engine.run_until(release)
            pool.release_slot([make_dag(total_bytes=8000, release=release,
                                        deadline=release + 4000.0,
                                        seed=i)])
            pool.request_cores((i % 4) + 1)
        engine.run_until(50_000.0)
        scan_reserved = sum(1 for w in pool.workers
                            if w.state is not WorkerState.YIELDED)
        scan_running = sum(1 for w in pool.workers
                           if w.state is WorkerState.RUNNING)
        assert pool.reserved_count == scan_reserved
        assert pool.running_count == scan_running
        assert pool.running_count == 0  # everything drained

    def test_slot_count_matches_dags(self):
        engine, pool = make_pool(num_cores=4)
        for i in range(5):
            release = i * 500.0
            engine.run_until(release)
            pool.release_slot([make_dag(total_bytes=3000, release=release,
                                        deadline=release + 4000.0,
                                        seed=i)])
        engine.run_until(50_000.0)
        assert pool.metrics.slot_count == 5
        assert not pool.active_dags

    def test_zero_byte_dag_counts_once(self):
        engine, pool = make_pool()
        dag = make_dag(total_bytes=0)
        pool.release_slot([dag])
        engine.run_until(1_000.0)
        assert pool.metrics.slot_count == 1


class TestRequestCoresEdgeCases:
    def _scan_counters(self, pool):
        reserved = sum(1 for w in pool.workers
                       if w.state is not WorkerState.YIELDED)
        running = sum(1 for w in pool.workers
                      if w.state is WorkerState.RUNNING)
        return reserved, running

    def test_shrink_below_running_count_never_preempts(self):
        engine, pool = make_pool(num_cores=4)
        dag = make_dag(total_bytes=40_000)  # wide parallel decode
        pool.release_slot([dag])
        while pool.running_count < 2 and engine.step():
            pass
        running = pool.running_count
        assert running >= 2
        pool.request_cores(0)
        # Running workers are never preempted mid-task: the target
        # undershoots but the reserve only sheds *idle* cores now.
        assert pool.running_count == running
        assert pool.reserved_count >= running
        for task in dag.tasks:
            if task.start_time is not None and task.finish_time is None:
                assert True  # still in flight, not cancelled
        engine.run_until(100_000.0)
        assert dag.finished
        # As tasks drained, the ratchet released the excess cores.
        assert pool.reserved_count == 0

    def test_repeated_grow_shrink_cycles_keep_invariants(self):
        engine, pool = make_pool(num_cores=4)
        for cycle in range(6):
            release = cycle * 600.0
            engine.run_until(release)
            pool.release_slot([make_dag(total_bytes=4000, release=release,
                                        deadline=release + 4000.0,
                                        seed=cycle)])
            for target in (0, 4, 1, 3):
                pool.request_cores(target)
                scan_reserved, scan_running = self._scan_counters(pool)
                assert pool.reserved_count == scan_reserved
                assert pool.running_count == scan_running
                assert pool.reserved_count >= pool.running_count
                assert 0 <= pool.reserved_count <= pool.num_cores
        engine.run_until(100_000.0)
        assert pool.running_count == 0
        scan_reserved, _ = self._scan_counters(pool)
        assert pool.reserved_count == scan_reserved

    def test_target_change_mid_tick_applies_at_task_end(self):
        engine, pool = make_pool(num_cores=2)
        dag = make_dag(total_bytes=3000)
        pool.release_slot([dag])
        while pool.running_count < 1 and engine.step():
            pass
        # Mid-task shrink: the target lands while work is in flight.
        pool.request_cores(1)
        assert pool.target_cores == 1
        # Mid-tick grow back before anything finished: no worker was
        # woken or released twice, counters still match a fresh scan.
        pool.request_cores(2)
        scan_reserved, scan_running = self._scan_counters(pool)
        assert pool.reserved_count == scan_reserved
        assert pool.running_count == scan_running
        engine.run_until(50_000.0)
        assert dag.finished
        assert pool.reserved_count == 2  # final target honoured

    def test_target_clamped_to_capacity(self):
        engine, pool = make_pool(num_cores=2)
        pool.request_cores(99)
        assert pool.target_cores == 2
        pool.request_cores(-5)
        assert pool.target_cores == 0
        pool.add_worker()
        pool.request_cores(99)
        assert pool.target_cores == 3  # elastic growth raises the clamp


class TestObserverOrdering:
    def test_observer_sees_dag_completion_state(self):
        engine, pool = make_pool()
        dag = make_dag(total_bytes=2000)
        seen = []

        def observe(task):
            if task.dag.tasks_remaining == 0:
                seen.append(task.dag.latency_us)

        pool.task_observer = observe
        pool.release_slot([dag])
        engine.run_until(50_000.0)
        assert len(seen) == 1
        assert seen[0] is not None
        assert seen[0] == dag.latency_us

"""Tests for the bootstrap A/B comparison helpers."""

import numpy as np
import pytest

from repro.analysis.comparison import (
    bootstrap_percentile_ci,
    compare_runs,
    compare_tails,
)
from repro.baselines.flexran import DedicatedScheduler, FlexRanScheduler
from repro.ran.config import PoolConfig, cell_20mhz_fdd
from repro.sim.runner import Simulation


class TestBootstrapCi:
    def test_contains_true_percentile(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(100, 10, 5000)
        lo, hi = bootstrap_percentile_ci(samples, 95,
                                         rng=np.random.default_rng(1))
        true_p95 = 100 + 1.645 * 10
        assert lo <= true_p95 <= hi

    def test_ci_shrinks_with_sample_size(self):
        rng = np.random.default_rng(2)
        small = rng.normal(0, 1, 200)
        large = rng.normal(0, 1, 20_000)
        lo_s, hi_s = bootstrap_percentile_ci(small, 90,
                                             rng=np.random.default_rng(3))
        lo_l, hi_l = bootstrap_percentile_ci(large, 90,
                                             rng=np.random.default_rng(4))
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_percentile_ci([1.0], 50)
        with pytest.raises(ValueError):
            bootstrap_percentile_ci([1.0, 2.0], 50, confidence=1.5)


class TestCompareTails:
    def test_clear_separation_detected(self):
        rng = np.random.default_rng(5)
        fast = rng.gamma(2, 10, 3000)
        slow = rng.gamma(2, 10, 3000) + 100
        result = compare_tails(fast, slow, percentile=99,
                               rng=np.random.default_rng(6))
        assert result.a_credibly_lower
        assert not result.b_credibly_lower
        assert result.difference < 0

    def test_identical_distributions_inconclusive(self):
        rng = np.random.default_rng(7)
        a = rng.normal(size=3000)
        b = rng.normal(size=3000)
        result = compare_tails(a, b, percentile=90,
                               rng=np.random.default_rng(8))
        assert not result.a_credibly_lower
        assert not result.b_credibly_lower
        assert 0.1 < result.p_a_below_b < 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_tails([1.0], [1.0, 2.0])


class TestCompareRuns:
    def test_scorecard_structure(self):
        config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=4,
                            deadline_us=2000.0)
        run_a = Simulation(config, FlexRanScheduler(), workload="none",
                           load_fraction=0.4, seed=10).run(250)
        run_b = Simulation(config, DedicatedScheduler(), workload="none",
                           load_fraction=0.4, seed=10).run(250)
        card = compare_runs(run_a, run_b, percentile=99,
                            rng=np.random.default_rng(11))
        assert card["tail"].percentile == 99
        assert card["reclaimed"][0] > card["reclaimed"][1]
        assert card["reclaim_advantage_a"] > 0
        assert len(card["miss_fraction"]) == 2

"""Tests for the structured result exporters."""

import csv
import json

import pytest

from repro.analysis.report import (
    result_to_record,
    sweep_to_records,
    write_records_csv,
    write_records_json,
)
from repro.baselines.flexran import FlexRanScheduler
from repro.ran.config import PoolConfig, cell_20mhz_fdd
from repro.sim.runner import Simulation


@pytest.fixture(scope="module")
def result():
    config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=4,
                        deadline_us=2000.0)
    sim = Simulation(config, FlexRanScheduler(), workload="redis",
                     load_fraction=0.4, seed=4)
    return sim.run(150)


class TestRecords:
    def test_flattens_all_headline_fields(self, result):
        record = result_to_record(result)
        for key in ("policy", "workload", "miss_fraction",
                    "latency_p99999_us", "reclaimed_fraction",
                    "scheduling_events", "meets_five_nines"):
            assert key in record
        assert record["policy"] == "flexran"
        assert record["rate_redis-get_per_s"] > 0

    def test_extra_labels_merged(self, result):
        record = result_to_record(result, sweep="loads", point=0.4)
        assert record["sweep"] == "loads"
        assert record["point"] == 0.4

    def test_sweep_zip(self, result):
        records = sweep_to_records([result, result],
                                   [{"i": 0}, {"i": 1}])
        assert [r["i"] for r in records] == [0, 1]


class TestWriters:
    def test_json_roundtrip(self, result, tmp_path):
        path = tmp_path / "out.json"
        write_records_json([result_to_record(result)], path)
        data = json.loads(path.read_text())
        assert len(data) == 1
        assert data[0]["policy"] == "flexran"

    def test_csv_union_header(self, result, tmp_path):
        records = [result_to_record(result, only_in_first=1),
                   result_to_record(result, only_in_second=2)]
        path = tmp_path / "out.csv"
        write_records_csv(records, path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert "only_in_first" in rows[0]
        assert "only_in_second" in rows[0]

    def test_empty_csv_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_records_csv([], tmp_path / "x.csv")
